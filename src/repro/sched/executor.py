"""Real process-based parallel execution of the interval problems.

The discrete-event simulator (:mod:`repro.sched.simulator`) is the
faithful instrument for the paper's speedup study (see DESIGN.md: the
GIL rules out threaded bigint parallelism).  This module demonstrates
that the task decomposition *also* runs on real OS processes — and
does so in a service-style shape: one **persistent** worker pool
(spawned lazily, reused across calls, explicit ``close()`` /
context-manager lifecycle) consumes a picklable rendering of the
Section-3 task structure (:func:`repro.core.tasks.build_interval_plan`)
with dependency-driven ``apply_async`` dispatch.

Compared with the original per-call ``Pool`` + per-node ``pool.map``
design, three things changed:

* **Pipelined dispatch** — PREINTERVAL (endpoint-sign) and INTERVAL
  (gap-solve) tasks are submitted the moment their inputs exist.  Gaps
  from independent subtrees run concurrently; there is no barrier at
  tree-node boundaries.
* **Shared endpoint signs** — each interleaving point's sign is
  evaluated once by a PREINTERVAL task and reused by both adjacent
  gaps, halving endpoint evaluations vs. the old
  ``solve_gap_standalone`` per-gap dispatch (Sagraloff's point that
  evaluation counts dominate applies squarely here).
* **Robustness** — per-task ``task_timeout`` with graceful, logged
  degradation to the sequential path; dead workers are respawned by the
  pool's maintenance thread, and a broken/terminated pool is replaced
  on the next call.  The same guards as
  :class:`repro.core.rootfinder.RealRootFinder` apply to degenerate
  inputs (zero polynomial, constants, repeated roots).

The root bound is :func:`repro.poly.roots_bounds.root_bound_bits` — the
same helper the sequential finder uses — so both paths pose *identical*
interval problems (same sentinels, same gap endpoints) and agree bit
for bit.

Observability: pass a :class:`repro.obs.trace.Tracer` and every worker
captures its own spans (with per-task bit costs from a worker-local
:class:`~repro.costmodel.counter.CostCounter`), ships them back through
the pool, and the parent merges them onto per-worker lanes
(``Tracer.adopt(spans, key=pid)``).  Pool lifecycle shows up as
``pool.spawn`` / ``pool.close`` spans; fallbacks as
``executor_fallback`` events.

Live telemetry rides along: every submit/complete transition samples
queue depth and in-flight task count into the finder's
:class:`~repro.obs.metrics.MetricsRegistry` and (when traced) into
``Tracer.counters``, which export as Chrome-trace ``"ph": "C"``
counter lanes next to the span lanes; reliability drift (fallbacks,
per-task timeouts, worker failures) is counted in the same registry so
the bench regression gate can watch it.  Post-run,
:func:`repro.obs.rollup.parallel_rollup` turns the adopted worker
spans into a utilization / idle-tail / parallel-efficiency summary.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import signal
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.interval import IntervalProblemSolver, solve_linear_scaled
from repro.core.remainder import NotSquareFreeError, compute_remainder_sequence
from repro.core.rootfinder import RealRootFinder, merge_sorted
from repro.core.tree import InterleavingTree

if TYPE_CHECKING:  # runtime import is deferred: repro.core.tasks
    from repro.core.tasks import NodePlan  # imports repro.sched.graph
from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.poly.dense import IntPoly
from repro.poly.roots_bounds import root_bound_bits

__all__ = [
    "ParallelRootFinder",
    "sign_worker",
    "gap_worker",
    "solve_gap_worker",
]


class _Degraded(Exception):
    """Internal: the pooled run cannot complete; fall back sequentially."""


# -- worker side -----------------------------------------------------------

#: Worker-local solver cache: repeated tasks against the same node
#: polynomial (same call, or the same input across batched calls) skip
#: re-deriving the derivative and evaluators.  Bounded so long-lived
#: service pools do not accumulate stale polynomials.
_SOLVER_CACHE: dict[tuple, IntervalProblemSolver] = {}
_SOLVER_CACHE_MAX = 8


def _cached_solver(
    coeffs: tuple[int, ...], mu: int, r_bits: int, strategy: str
) -> IntervalProblemSolver:
    key = (coeffs, mu, r_bits, strategy)
    solver = _SOLVER_CACHE.get(key)
    if solver is None:
        if len(_SOLVER_CACHE) >= _SOLVER_CACHE_MAX:
            _SOLVER_CACHE.clear()
        solver = IntervalProblemSolver(
            IntPoly(coeffs), mu, r_bits, strategy=strategy
        )
        _SOLVER_CACHE[key] = solver
    return solver


def _traced_solver(
    coeffs: tuple[int, ...], mu: int, r_bits: int, strategy: str
) -> tuple[IntervalProblemSolver, Tracer, int]:
    pid = os.getpid()
    counter = CostCounter()
    tracer = Tracer(counter=counter)
    solver = IntervalProblemSolver(
        IntPoly(coeffs), mu, r_bits, counter=counter,
        strategy=strategy, tracer=tracer, label=f"pid{pid}",
    )
    return solver, tracer, pid


def sign_worker(args: tuple) -> tuple:
    """Pool worker: one PREINTERVAL task — the sign of a node polynomial
    just right of one interleaving point.

    ``args = (label, t, y, coeffs, mu, r_bits, strategy, trace)``;
    returns ``("sign", label, t, sign, spans)`` where ``spans`` is the
    worker tracer's export when ``trace`` is truthy (else ``None``).
    Module-level so it pickles.
    """
    label, t, y, coeffs, mu, r_bits, strategy, trace = args
    if not trace:
        solver = _cached_solver(coeffs, mu, r_bits, strategy)
        return ("sign", label, t, solver.preinterval_sign(y), None)
    solver, tracer, pid = _traced_solver(coeffs, mu, r_bits, strategy)
    with tracer.span("sign", phase="interval.preinterval",
                     node=list(label), t=t, pid=pid):
        s = solver.preinterval_sign(y)
    return ("sign", label, t, s, tracer.export())


def gap_worker(args: tuple) -> tuple:
    """Pool worker: one INTERVAL task — solve gap ``i`` of a node given
    both endpoint signs (shared with the adjacent gaps' tasks).

    ``args = (label, gap, left, right, s_left, s_right, sign_at_neg_inf,
    coeffs, mu, r_bits, strategy, trace)``; returns
    ``("gap", label, gap, scaled_root, spans)``.  Module-level so it
    pickles.
    """
    (label, gap, left, right, s_left, s_right, s_inf,
     coeffs, mu, r_bits, strategy, trace) = args
    if not trace:
        solver = _cached_solver(coeffs, mu, r_bits, strategy)
        val = solver.solve_gap(gap, left, right, s_left, s_right, s_inf)
        return ("gap", label, gap, val, None)
    solver, tracer, pid = _traced_solver(coeffs, mu, r_bits, strategy)
    with tracer.span("gap", phase="interval",
                     node=list(label), gap=gap, pid=pid):
        val = solver.solve_gap(gap, left, right, s_left, s_right, s_inf)
    return ("gap", label, gap, val, tracer.export())


def solve_gap_worker(args: tuple) -> tuple[int, int, list[dict] | None]:
    """Pool worker: solve one interval problem *standalone* (recomputing
    both endpoint signs) — the legacy per-gap task body, kept for
    direct use and comparison against the shared-sign pipeline.

    ``args = (coeffs, mu, r_bits, gap_index, left, right[, trace])``;
    returns ``(gap_index, scaled_root, spans)`` where ``spans`` is the
    worker tracer's export when ``trace`` is truthy (else ``None``).
    Module-level so it pickles.
    """
    coeffs, mu, r_bits, gap, left, right = args[:6]
    trace = bool(args[6]) if len(args) > 6 else False
    if not trace:
        solver = IntervalProblemSolver(IntPoly(coeffs), mu, r_bits)
        return gap, solver.solve_gap_standalone(gap, left, right), None
    solver, tracer, pid = _traced_solver(tuple(coeffs), mu, r_bits, "hybrid")
    with tracer.span("gap", phase="interval", gap=gap, pid=pid):
        val = solver.solve_gap_standalone(gap, left, right)
    return gap, val, tracer.export()


# -- parent side -----------------------------------------------------------


@dataclass
class ParallelRootFinder:
    """Multiprocessing variant of :class:`repro.core.rootfinder.RealRootFinder`
    built around one persistent worker pool.

    The pool is spawned lazily on the first call and reused by every
    subsequent :meth:`find_roots_scaled` / :meth:`find_roots_many`
    until :meth:`close` (also a context manager).  Dispatch is
    dependency-driven: per-node PREINTERVAL sign tasks start as soon as
    the node's children have delivered their roots, and each gap's
    INTERVAL task starts as soon as its two endpoint signs exist —
    independent subtrees overlap freely.

    Degenerate inputs behave exactly like the sequential finder:
    ``ValueError`` on the zero polynomial, ``[]`` for constants, and a
    square-free-decomposition fallback for repeated roots.  Worker
    failures and per-task timeouts degrade to the sequential path
    (counted in :attr:`fallback_count`, logged via the tracer), so a
    call always returns the exact answer.

    Parameters
    ----------
    mu:
        Output precision in bits (scaled grid is ``2**-mu``).
    processes:
        Pool size.  Dead workers are respawned by the pool itself; a
        broken pool is replaced on the next call.
    check_tree:
        Assert Theorem 1's conclusions at every tree node — same
        default as the sequential finder.
    strategy:
        Interval-solver strategy (``hybrid`` / ``bisection`` /
        ``newton``), applied inside every worker.  May be changed
        between calls; the pool is strategy-agnostic.
    task_timeout:
        Seconds to wait for *some* task completion before declaring the
        pool wedged and finishing sequentially (``None`` = wait
        forever).
    counter:
        Parent-side cost counter for the remainder/tree phases (worker
        costs stay worker-local and return only through trace spans).
    tracer:
        Observability hook; see the module docstring.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` accumulating live
        executor telemetry across every call this finder serves: the
        ``executor.queue_depth`` / ``executor.in_flight`` gauges and
        the ``executor.queue_depth.samples`` histogram (sampled at
        every submit/complete event), plus the reliability counters
        ``executor.fallbacks``, ``executor.task_timeouts``, and
        ``executor.worker_failures`` the regression gate watches.  A
        fresh registry is created per finder unless one is passed in.
    faults:
        Optional deterministic fault-injection plan (an object with an
        ``intercept(dispatch_index, fn, payload, finder)`` method — see
        :class:`repro.verify.faults.FaultPlan`).  Consulted once per
        task submission, in dispatch order, and may replace the task
        body; ``None`` (the default) is zero-overhead.  Test-only: the
        production dispatch path never sets it.
    """

    mu: int
    processes: int = 2
    check_tree: bool = True
    strategy: str = "hybrid"
    task_timeout: float | None = None
    counter: CostCounter = NULL_COUNTER
    tracer: Tracer = NULL_TRACER
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    faults: Any = None
    #: sequential degradations so far (repeated roots, timeouts, worker
    #: failures); parity tests assert it stays 0 on the happy path.
    fallback_count: int = field(default=0, init=False)
    _pool: Any = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mu < 1:
            raise ValueError("mu must be >= 1")
        if self.processes < 1:
            raise ValueError("processes must be >= 1")
        from repro.core.sieve import STRATEGIES

        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; "
                f"known: {list(STRATEGIES)}"
            )

    # -- pool lifecycle --------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            with self.tracer.span("pool.spawn", phase="pool",
                                  processes=self.processes):
                self._pool = mp.get_context("spawn").Pool(self.processes)
        return self._pool

    def worker_pids(self) -> list[int]:
        """Sorted OS pids of the live pool's workers (``[]`` if none)."""
        if self._pool is None:
            return []
        return sorted(w.pid for w in self._pool._pool)

    def close(self) -> None:
        """Shut the pool down cleanly (idempotent).

        The finder stays usable: the next call simply spawns a fresh
        pool.
        """
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        with self.tracer.span("pool.close", phase="pool"):
            pool.close()
            pool.join()

    def _discard_pool(self) -> None:
        """Hard-kill a wedged pool; the next call respawns."""
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        # terminate() can itself block forever: a worker SIGKILLed while
        # blocked in the inqueue's recv dies holding the queue read-lock
        # (a POSIX semaphore — no owner, never released), and
        # Pool._terminate drains the inqueue under that same lock.  Run
        # the teardown in a daemon thread with a bounded join; if it
        # wedges, SIGKILL the workers directly and abandon the pool
        # (its daemonic processes are reaped at interpreter exit).
        pids = [w.pid for w in pool._pool if w.pid]

        def _teardown() -> None:
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass

        t = threading.Thread(target=_teardown, daemon=True)
        t.start()
        t.join(timeout=5.0)
        if t.is_alive():
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass

    def __enter__(self) -> "ParallelRootFinder":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False

    def __del__(self) -> None:
        try:
            self._discard_pool()
        except Exception:
            pass

    # -- public API ------------------------------------------------------
    def find_roots_scaled(self, p: IntPoly) -> list[int]:
        """Scaled mu-approximations of all distinct real roots, ascending
        (exact; bit-identical to the sequential finder)."""
        tracer = self.tracer
        if p.is_zero():
            raise ValueError("the zero polynomial has every number as a root")
        if p.leading_coefficient < 0:
            p = -p
        if p.degree == 0:
            return []
        if p.degree == 1:
            return [solve_linear_scaled(p, self.mu)]
        try:
            seq = compute_remainder_sequence(p, self.counter, tracer)
        except NotSquareFreeError:
            tracer.event("executor_fallback", reason="not_square_free",
                         degree=p.degree)
            return self._sequential_scaled(p)
        with tracer.span("tree.compute_polynomials", phase="tree",
                         degree=p.degree):
            tree = InterleavingTree(seq)
            tree.compute_polynomials(self.counter, check=self.check_tree,
                                     tracer=tracer)
        # Deferred import (cycle: repro.core.tasks -> repro.sched.graph
        # -> repro.sched package -> this module).
        from repro.core.tasks import build_interval_plan

        r_bits = root_bound_bits(p)
        plan = build_interval_plan(tree)
        try:
            with tracer.span("executor.dispatch", phase="interval",
                             degree=p.degree, nodes=len(plan)):
                return self._run_plan(plan, r_bits)
        except _Degraded as exc:
            tracer.event("executor_fallback", reason=str(exc),
                         degree=p.degree)
            self._discard_pool()
            return self._sequential_scaled(p)

    def find_roots_many(self, polys: Sequence[IntPoly]) -> list[list[int]]:
        """Batched throughput API: solve many polynomials on one warm pool.

        The pool is spawned once (if not already live) and stays warm
        across the whole batch — the service-style shape where per-call
        pool startup would otherwise dominate.  Results are in input
        order, each exactly what :meth:`find_roots_scaled` returns.
        """
        out: list[list[int]] = []
        with self.tracer.span("executor.batch", phase="interval",
                              count=len(polys)):
            for p in polys:
                out.append(self.find_roots_scaled(p))
        return out

    # -- internals -------------------------------------------------------
    def _sequential_scaled(self, p: IntPoly) -> list[int]:
        """Sequential degradation path: same parameters, same answer."""
        self.fallback_count += 1
        self.metrics.counter("executor.fallbacks").inc()
        finder = RealRootFinder(
            mu_bits=self.mu, check_tree=self.check_tree,
            counter=self.counter, strategy=self.strategy, tracer=self.tracer,
        )
        return finder.find_roots(p).scaled

    def _run_plan(self, plan: "list[NodePlan]", r_bits: int) -> list[int]:
        """Dependency-driven dispatch of one plan over the shared pool."""
        pool = self._ensure_pool()
        tracer = self.tracer
        capture = tracer.enabled
        mu = self.mu
        strategy = self.strategy
        sentinel = 1 << (r_bits + mu)

        by_label = {node.label: node for node in plan}
        parent_of: dict[tuple[int, int], tuple[int, int]] = {}
        waiting: dict[tuple[int, int], int] = {}
        for node in plan:
            waiting[node.label] = len(node.children)
            for child in node.children:
                parent_of[child] = node.label
        root_label = plan[-1].label  # postorder: the root closes the plan

        roots: dict[tuple[int, int], list] = {}
        ys: dict[tuple[int, int], list[int]] = {}
        signs: dict[tuple[int, int], list] = {}
        gap_started: dict[tuple[int, int], list[bool]] = {}
        gaps_left: dict[tuple[int, int], int] = {}

        results_q: queue.Queue = queue.Queue()
        pending = 0
        completed: list[tuple[int, int]] = []
        done = False

        # Live telemetry: sampled at every submit/complete event (no
        # timer thread — the dispatch loop *is* the state machine, so
        # its transitions are exactly the moments the series changes).
        procs = self.processes
        depth_gauge = self.metrics.gauge("executor.queue_depth")
        inflight_gauge = self.metrics.gauge("executor.in_flight")
        depth_hist = self.metrics.histogram("executor.queue_depth.samples")

        def sample() -> None:
            inflight = pending if pending < procs else procs
            depth = pending - inflight
            depth_gauge.set(depth)
            inflight_gauge.set(inflight)
            depth_hist.observe(depth)
            if capture:
                tracer.sample("executor.queue_depth", depth)
                tracer.sample("executor.in_flight", inflight)

        dispatch_index = 0
        start_pids = set(self.worker_pids())

        def submit(fn, payload) -> None:
            nonlocal pending, dispatch_index
            if self.faults is not None:
                fn, payload = self.faults.intercept(
                    dispatch_index, fn, payload, self
                )
            dispatch_index += 1
            try:
                pool.apply_async(
                    fn, (payload,),
                    callback=results_q.put,
                    error_callback=results_q.put,
                )
            except Exception as exc:  # pool broken/closed underneath us
                raise _Degraded(f"dispatch failed: {exc!r}") from exc
            pending += 1
            sample()

        def complete(label: tuple[int, int]) -> None:
            nonlocal done
            completed.append(label)
            if label == root_label:
                done = True

        def start_node(node: NodePlan) -> None:
            if node.degree == 1:
                # Leaves are linear — solved in the parent, as in the
                # sequential path (paper: "easy to estimate").
                roots[node.label] = [solve_linear_scaled(IntPoly(node.coeffs),
                                                         mu)]
                complete(node.label)
                return
            inter: list[int] = []
            for child in node.children:
                inter = merge_sorted(inter, roots[child])
            ys_node = [-sentinel] + inter + [sentinel]
            L = node.degree
            ys[node.label] = ys_node
            signs[node.label] = [None] * (L + 1)
            gap_started[node.label] = [False] * L
            gaps_left[node.label] = L
            roots[node.label] = [None] * L
            for t, y in enumerate(ys_node):
                submit(sign_worker, (node.label, t, y, node.coeffs, mu,
                                     r_bits, strategy, capture))

        def on_sign(label: tuple[int, int], t: int, s: int) -> None:
            node = by_label[label]
            sg = signs[label]
            sg[t] = s
            ys_node = ys[label]
            started = gap_started[label]
            for gap in (t - 1, t):
                if (0 <= gap < node.degree and not started[gap]
                        and sg[gap] is not None and sg[gap + 1] is not None):
                    started[gap] = True
                    submit(gap_worker, (label, gap, ys_node[gap],
                                        ys_node[gap + 1], sg[gap], sg[gap + 1],
                                        node.sign_at_neg_inf, node.coeffs,
                                        mu, r_bits, strategy, capture))

        def on_gap(label: tuple[int, int], gap: int, val: int) -> None:
            roots[label][gap] = val
            gaps_left[label] -= 1
            if gaps_left[label] == 0:
                complete(label)

        for node in plan:  # seed: nodes with no root-producing children
            if waiting[node.label] == 0:
                start_node(node)

        while True:
            while completed:
                label = completed.pop()
                parent = parent_of.get(label)
                if parent is not None:
                    waiting[parent] -= 1
                    if waiting[parent] == 0:
                        start_node(by_label[parent])
            if done:
                break
            if pending == 0:
                raise _Degraded("scheduler stalled with no pending tasks")
            try:
                item = results_q.get(timeout=self.task_timeout)
            except queue.Empty:
                self.metrics.counter("executor.task_timeouts").inc()
                # A timeout with a changed worker-pid set means a worker
                # died holding a task: the pool respawned the process but
                # the in-flight task's result is gone for good.
                if set(self.worker_pids()) != start_pids:
                    self.metrics.counter("executor.worker_failures").inc()
                raise _Degraded(
                    f"no task completion within {self.task_timeout}s"
                ) from None
            pending -= 1
            sample()
            if isinstance(item, BaseException):
                self.metrics.counter("executor.worker_failures").inc()
                raise _Degraded(f"worker failed: {item!r}")
            kind, label, idx, val, spans = item
            if spans:
                # Lane per OS worker: spans carry the worker pid.
                pid = spans[0].get("attrs", {}).get("pid")
                tracer.adopt(spans, key=pid)
            if kind == "sign":
                on_sign(label, idx, val)
            else:
                on_gap(label, idx, val)

        return roots[root_label]
