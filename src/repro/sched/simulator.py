"""Discrete-event simulation of the shared-queue multiprocessor.

This is the substitute for the paper's 20-processor Sequent Symmetry
(see DESIGN.md): the recorded task DAG is replayed under the same
dynamic scheduling policy the paper describes — a single FIFO task
queue from which any free processor takes the oldest ready task.

The simulated clock runs in bit-cost units.  A per-task ``overhead``
parameter models the fixed cost of dequeueing/bookkeeping (the paper's
"grain ... not so small as to make the overheads large"); the grain
ablation bench sweeps it.

The simulation is deterministic: ties are broken by task id, matching
the FIFO enqueue order of the recorded run.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.sched.graph import TaskGraph

__all__ = ["ScheduleResult", "simulate", "simulate_static", "speedup_curve"]


@dataclass
class ScheduleResult:
    """Outcome of one simulated schedule."""

    processors: int
    makespan: int
    total_work: int
    critical_path: int
    busy: list[int]
    n_tasks: int
    #: (start, end, processor, task_id) tuples; only kept when tracing.
    trace: list[tuple[int, int, int, int]] | None = None

    @property
    def utilization(self) -> float:
        if self.makespan == 0:
            return 1.0
        return self.total_work / (self.makespan * self.processors)

    def speedup_vs(self, t1: int) -> float:
        return t1 / self.makespan if self.makespan else float("inf")

    def check_bounds(self) -> None:
        """Assert the classical greedy-scheduling sandwich:
        ``max(T_1/p, T_inf) <= T_p <= T_1/p + T_inf``."""
        p = self.processors
        lower = max((self.total_work + p - 1) // p, self.critical_path)
        upper = self.total_work // p + self.critical_path + p  # integer slack
        if not (lower <= self.makespan <= upper):
            raise AssertionError(
                f"greedy bound violated: {lower} <= {self.makespan} <= {upper}"
            )


def simulate(
    graph: TaskGraph,
    processors: int,
    overhead: int = 0,
    queue_overhead: int = 0,
    keep_trace: bool = False,
) -> ScheduleResult:
    """Replay a recorded task graph on ``processors`` simulated CPUs.

    Scheduling policy: whenever a processor is free and the ready queue
    is nonempty, it takes the ready task with the smallest id (FIFO by
    enqueue order, as in the paper's implementation).

    ``overhead`` inflates every task's duration (per-task bookkeeping
    that parallelizes); ``queue_overhead`` models the *serialized* cost
    of popping the shared task queue — the Sequent implementation's
    lock-protected queue.  Serialized acquisition is what makes too
    fine a grain hurt at high processor counts (the paper's Section 3
    grain discussion and the droop at 16 processors).
    """
    if processors < 1:
        raise ValueError("processors must be >= 1")
    graph._require_recorded()
    tasks = graph.tasks
    n = len(tasks)

    indeg = [len(t.deps) for t in tasks]
    children: list[list[int]] = [[] for _ in range(n)]
    for t in tasks:
        for d in t.deps:
            children[d].append(t.tid)

    ready: list[int] = [t.tid for t in tasks if not t.deps]
    heapq.heapify(ready)

    #: (time, processor) for free processors
    free: list[tuple[int, int]] = [(0, p) for p in range(processors)]
    heapq.heapify(free)
    #: (finish_time, task_id, processor) for running tasks
    running: list[tuple[int, int, int]] = []

    busy = [0] * processors
    trace: list[tuple[int, int, int, int]] | None = [] if keep_trace else None
    total_work = 0
    completed = 0
    clock = 0
    queue_free = 0  # serialized task-queue lock availability

    while completed < n:
        # Assign as many ready tasks as possible to free processors at the
        # earliest available time >= current clock.
        while ready and free:
            t_free, proc = heapq.heappop(free)
            start = max(t_free, clock)
            if queue_overhead:
                start = max(start, queue_free)
                queue_free = start + queue_overhead
                start = queue_free
            tid = heapq.heappop(ready)
            dur = (tasks[tid].cost or 0) + overhead
            end = start + dur
            busy[proc] += dur
            total_work += dur
            heapq.heappush(running, (end, tid, proc))
            if trace is not None:
                trace.append((start, end, proc, tid))
        if not running:
            raise RuntimeError("deadlock: no running tasks but work remains")
        # Advance to the next completion.
        end, tid, proc = heapq.heappop(running)
        clock = max(clock, end)
        heapq.heappush(free, (end, proc))
        completed += 1
        for ch in children[tid]:
            indeg[ch] -= 1
            if indeg[ch] == 0:
                heapq.heappush(ready, ch)

    gstats = graph.stats(overhead)
    return ScheduleResult(
        processors=processors,
        makespan=clock,
        total_work=total_work,
        critical_path=gstats.critical_path,
        busy=busy,
        n_tasks=n,
        trace=trace,
    )


def simulate_static(
    graph: TaskGraph,
    processors: int,
    overhead: int = 0,
    assignment: list[int] | None = None,
) -> ScheduleResult:
    """Static scheduling: the paper's earlier, abandoned policy.

    Footnote 3 of the paper: "An earlier implementation used a static
    scheduling policy".  Here every task is pre-assigned to a processor
    (round-robin over creation order by default, or an explicit
    ``assignment``), and each processor executes its own tasks in id
    order, waiting for dependencies.  No work ever migrates — exactly
    the load-imbalance failure mode that motivated the dynamic queue.
    """
    if processors < 1:
        raise ValueError("processors must be >= 1")
    graph._require_recorded()
    tasks = graph.tasks
    n = len(tasks)
    if assignment is None:
        assignment = [t.tid % processors for t in tasks]
    if len(assignment) != n or any(
        not 0 <= a < processors for a in assignment
    ):
        raise ValueError("assignment must map every task to a processor")

    queues: list[list[int]] = [[] for _ in range(processors)]
    for t in tasks:
        queues[assignment[t.tid]].append(t.tid)

    finish = [0] * n
    done = [False] * n
    proc_time = [0] * processors
    heads = [0] * processors
    busy = [0] * processors
    remaining = n
    while remaining:
        progressed = False
        for proc in range(processors):
            while heads[proc] < len(queues[proc]):
                tid = queues[proc][heads[proc]]
                t = tasks[tid]
                if not all(done[d] for d in t.deps):
                    break  # this processor stalls until the dep lands
                start = max(
                    proc_time[proc],
                    max((finish[d] for d in t.deps), default=0),
                )
                dur = (t.cost or 0) + overhead
                finish[tid] = start + dur
                done[tid] = True
                proc_time[proc] = start + dur
                busy[proc] += dur
                heads[proc] += 1
                remaining -= 1
                progressed = True
        if not progressed and remaining:
            raise RuntimeError(
                "static schedule deadlocked (cyclic wait across queues?)"
            )
    gstats = graph.stats(overhead)
    return ScheduleResult(
        processors=processors,
        makespan=max(finish, default=0),
        total_work=gstats.total_work,
        critical_path=gstats.critical_path,
        busy=busy,
        n_tasks=n,
    )


def speedup_curve(
    graph: TaskGraph,
    processor_counts: list[int],
    overhead: int = 0,
    queue_overhead: int = 0,
) -> dict[int, ScheduleResult]:
    """Simulate every processor count; key 1 is always included so
    speedups are relative to the one-processor run of the *parallel*
    program, exactly as in the paper's Tables 3-7."""
    counts = sorted(set(processor_counts) | {1})
    return {
        p: simulate(graph, p, overhead, queue_overhead) for p in counts
    }
