"""Task-graph container and the recorded (1-processor) execution.

Creation order is required to be a topological order (every task's
dependencies have smaller ids).  The builders in
:mod:`repro.core.tasks` guarantee this by constructing bottom-up in
post-order; :meth:`TaskGraph.run_recorded` checks it at runtime.

The recorded run *is* the algorithm: task bodies perform the real
arithmetic through the cost counter, and the per-task bit-cost deltas
become the task durations used by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.costmodel.counter import CostCounter
from repro.sched.task import Task, TaskKind

__all__ = ["TaskGraph", "GraphStats"]


@dataclass
class GraphStats:
    """Aggregate DAG quantities used by the speedup analysis.

    ``total_work`` is the classical T_1 and ``critical_path`` is T_inf
    (both in bit-cost units, optionally including per-task overhead);
    a greedy schedule satisfies ``T_p <= T_1 / p + T_inf`` (Brent), a
    bound the simulator tests enforce.
    """

    n_tasks: int
    total_work: int
    critical_path: int
    by_kind: dict[str, tuple[int, int]]  # kind -> (count, work)


class TaskGraph:
    """An append-only DAG of :class:`Task` objects."""

    def __init__(self) -> None:
        self.tasks: list[Task] = []
        self._executed = False

    # -- construction ------------------------------------------------------
    def add(
        self,
        kind: TaskKind,
        body: Callable[[], None],
        deps: Iterable[int] = (),
        label: str = "",
        phase: str = "",
    ) -> int:
        """Append a task; returns its id.  Deps must already exist."""
        deps_t = tuple(sorted(set(int(d) for d in deps)))
        tid = len(self.tasks)
        for d in deps_t:
            if d >= tid or d < 0:
                raise ValueError(
                    f"task {tid} depends on {d}, which does not precede it"
                )
        self.tasks.append(
            Task(tid=tid, kind=kind, label=label, deps=deps_t, body=body,
                 phase=phase or kind.value)
        )
        return tid

    def __len__(self) -> int:
        return len(self.tasks)

    # -- recorded execution ---------------------------------------------------
    def run_recorded(self, counter: CostCounter) -> None:
        """Execute every task once, in creation (= topological) order,
        attributing the counter's bit-cost delta to each task.

        This is exactly the paper's 1-processor run of the dynamic-queue
        program: FIFO order with tasks enqueued as their dependencies
        complete degenerates to creation order.
        """
        if self._executed:
            raise RuntimeError("task graph has already been executed")
        done = 0
        for task in self.tasks:
            for d in task.deps:
                if d >= done:
                    raise RuntimeError(
                        f"task {task.tid} ran before its dependency {d}"
                    )
            before = counter.phase_stats()
            with counter.phase(task.phase):
                task.body()
            after = counter.phase_stats()
            task.cost = after.total_bit_cost - before.total_bit_cost
            task.op_count = after.op_count - before.op_count
            done += 1
        self._executed = True

    @property
    def executed(self) -> bool:
        return self._executed

    # -- analysis -----------------------------------------------------------
    def stats(self, overhead: int = 0) -> GraphStats:
        """Compute T_1, T_inf and per-kind work (requires a recorded run)."""
        self._require_recorded()
        total = 0
        finish: list[int] = [0] * len(self.tasks)
        by_kind: dict[str, tuple[int, int]] = {}
        for task in self.tasks:
            dur = (task.cost or 0) + overhead
            total += dur
            start = max((finish[d] for d in task.deps), default=0)
            finish[task.tid] = start + dur
            cnt, wrk = by_kind.get(task.kind.value, (0, 0))
            by_kind[task.kind.value] = (cnt + 1, wrk + dur)
        return GraphStats(
            n_tasks=len(self.tasks),
            total_work=total,
            critical_path=max(finish, default=0),
            by_kind=by_kind,
        )

    def _require_recorded(self) -> None:
        if not self._executed:
            raise RuntimeError("run_recorded() must be called first")
