"""Task objects for the dynamic-scheduling reproduction (paper Section 3).

The paper's parallel implementation divides the computation into tasks
kept in a shared dynamic queue; free processors pop the first task, and
completing a task typically enqueues others.  We reproduce that
structure as an explicit recorded DAG:

* every task has a ``kind`` (RECURSE, COMPUTEPOLY entry, SORT,
  PREINTERVAL, INTERVAL, and the remainder phase's scalar MUL/ADD/DIV
  grains), its dependency list, and a Python ``body`` that performs the
  *real* computation;
* executing the graph once (see :mod:`repro.sched.graph`) records each
  task's cost in bit-operation units from the cost counter;
* the discrete-event simulator (:mod:`repro.sched.simulator`) then
  replays the DAG on any number of processors.

Because the dataflow is deterministic, the recorded DAG is identical
for every processor count — replaying is exact, not approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

__all__ = ["TaskKind", "Task"]


class TaskKind(str, Enum):
    """Task kinds, following the paper's Fig. 3.2 vocabulary."""

    # Remainder-sequence phase (Section 3.1)
    REM_Q = "rem.q"            # compute q_{i,1} / q_{i,0} / c_i^2
    REM_MUL = "rem.mul"        # one scalar product of Eq. (18)
    REM_ADD = "rem.add"        # the two additions of Eq. (18)
    REM_DIV = "rem.div"        # the exact division by c_{i-1}^2
    # Tree phase (Section 3.2)
    RECURSE = "recurse"        # top-down structure/initialization
    MATMUL = "matmul"          # one entry of one of the two 2x2 products
    DIVSCALE = "divscale"      # exact division by c_{k-1}^2 c_k^2
    LEAFPOLY = "leafpoly"      # a leaf's U_i / Q_i setup
    SPINEPOLY = "spinepoly"    # rightmost node adopting F_{i-1}
    SORT = "sort"              # merge children's sorted roots
    PREINTERVAL = "preinterval"  # evaluate P at one interleaving point
    INTERVAL = "interval"      # solve one interval problem
    LINROOT = "linroot"        # root of a linear node polynomial


@dataclass
class Task:
    """One schedulable unit.

    ``cost`` is filled by the recorded run: the paper's quadratic
    bit-cost of the arithmetic performed by ``body``, plus nothing else
    — per-task overheads are added by the simulator so they can be swept
    (the grain ablation bench).
    """

    tid: int
    kind: TaskKind
    label: str
    deps: tuple[int, ...]
    body: Callable[[], None]
    phase: str = ""
    cost: int | None = None
    op_count: int | None = None

    def __repr__(self) -> str:  # keep reprs short: graphs have ~10^4 tasks
        return f"Task({self.tid}, {self.kind.value}, {self.label!r})"
