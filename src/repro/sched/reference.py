"""A deliberately simple reference scheduler for cross-validation.

The production simulator (:mod:`repro.sched.simulator`) is event-driven
with heaps; this module re-implements the same FIFO list-scheduling
policy as a naive time-stepping loop over task completions.  It is
O(n^2)-ish and used only by the test suite: both implementations must
produce identical makespans on every DAG — a strong mutual check.
"""

from __future__ import annotations

from repro.sched.graph import TaskGraph

__all__ = ["reference_makespan"]


def reference_makespan(
    graph: TaskGraph, processors: int, overhead: int = 0
) -> int:
    """Makespan under FIFO greedy list scheduling, computed naively."""
    graph._require_recorded()
    tasks = graph.tasks
    n = len(tasks)
    indeg = [len(t.deps) for t in tasks]
    children: list[list[int]] = [[] for _ in range(n)]
    for t in tasks:
        for d in t.deps:
            children[d].append(t.tid)

    ready: list[int] = sorted(t.tid for t in tasks if not t.deps)
    #: (finish_time, tid, proc) of in-flight tasks
    running: list[tuple[int, int, int]] = []
    #: (last_finish_time, proc) of processors whose completion event has
    #: been processed — the production simulator's ``free`` heap: a
    #: processor is reusable only once its completion is *popped*.
    free: list[tuple[int, int]] = [(0, p) for p in range(processors)]
    finished = 0
    clock = 0

    while finished < n:
        ready.sort()
        free.sort()
        while ready and free:
            t_free, proc = free.pop(0)
            tid = ready.pop(0)
            start = max(clock, t_free)
            dur = (tasks[tid].cost or 0) + overhead
            running.append((start + dur, tid, proc))
        if not running:
            raise RuntimeError("deadlock in reference scheduler")
        running.sort()
        finish, tid, proc = running.pop(0)
        clock = max(clock, finish)
        free.append((finish, proc))
        finished += 1
        for ch in children[tid]:
            indeg[ch] -= 1
            if indeg[ch] == 0:
                ready.append(ch)

    return clock
