"""Parallel substrate: task DAG, dynamic-queue multiprocessor simulator
(the Sequent Symmetry substitute), and a real multiprocessing executor."""

from repro.sched.task import Task, TaskKind
from repro.sched.graph import TaskGraph, GraphStats
from repro.sched.simulator import ScheduleResult, simulate, simulate_static, speedup_curve
from repro.sched.metrics import SpeedupRow, speedup_table, format_speedup_table
from repro.sched.executor import ParallelRootFinder
from repro.sched.render import render_gantt, render_utilization
from repro.sched.reference import reference_makespan

__all__ = [
    "Task", "TaskKind", "TaskGraph", "GraphStats",
    "ScheduleResult", "simulate", "simulate_static", "speedup_curve",
    "SpeedupRow", "speedup_table", "format_speedup_table",
    "ParallelRootFinder",
    "render_gantt",
    "render_utilization",
    "reference_makespan",
]
