"""Speedup/efficiency reporting (paper Tables 3-7, Figures 9-13).

The paper reports speedups *"with respect to the parallel program with
one processor"*; :func:`speedup_table` follows that convention exactly
(T_1 is the simulated one-processor makespan of the same task graph,
not a separate sequential implementation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sched.graph import TaskGraph
from repro.sched.simulator import speedup_curve

__all__ = ["SpeedupRow", "speedup_table", "format_speedup_table"]


@dataclass
class SpeedupRow:
    """One workload's speedups across processor counts."""

    label: str
    degree: int
    makespans: dict[int, int]

    def speedup(self, p: int) -> float:
        return self.makespans[1] / self.makespans[p]

    def efficiency(self, p: int) -> float:
        return self.speedup(p) / p


def speedup_table(
    graphs: dict[int, TaskGraph],
    processor_counts: list[int],
    overhead: int = 0,
    labels: dict[int, str] | None = None,
) -> list[SpeedupRow]:
    """Simulate every graph at every processor count.

    ``graphs`` maps a degree (table row) to its recorded task graph.
    """
    rows = []
    for degree in sorted(graphs):
        curve = speedup_curve(graphs[degree], processor_counts, overhead)
        rows.append(
            SpeedupRow(
                label=(labels or {}).get(degree, f"n={degree}"),
                degree=degree,
                makespans={p: r.makespan for p, r in curve.items()},
            )
        )
    return rows


def format_speedup_table(
    rows: list[SpeedupRow], processor_counts: list[int], title: str = ""
) -> str:
    """Render rows in the paper's Tables 3-7 layout."""
    counts = sorted(set(processor_counts) | {1})
    lines = []
    if title:
        lines.append(title)
    header = f"{'degree':>8s} | " + " ".join(f"{p:>7d}" for p in counts)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = " ".join(f"{row.speedup(p):7.2f}" for p in counts)
        lines.append(f"{row.degree:>8d} | {cells}")
    return "\n".join(lines)
