"""Shared ``BENCH_<name>.json`` writer for every benchmark driver.

All ``benchmarks/bench_*.py`` files and the ``repro bench`` CLI route
their machine-readable output through here, so each bench run leaves a
schema-valid :class:`repro.obs.perf.BenchArtifact` next to the
human-readable ``.txt`` tables — the repo's bench trajectory in
comparable, gateable form.

Three layers:

* :func:`bench_artifact` — an empty artifact pre-stamped with the
  environment fingerprint and workload params;
* :func:`add_sequential_metrics` / :func:`add_parallel_metrics` — fold
  the standard observables of :class:`~repro.bench.runner`
  records into an artifact (per-cell bit costs, case tallies,
  iteration histograms, per-phase rollups, wall times);
* :func:`save_bench_artifact` — write it as
  ``benchmarks/results/BENCH_<name>.json`` (honors
  ``REPRO_RESULTS_DIR``, like ``save_result``).
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Mapping

from repro.bench.runner import ParallelRecord, SequentialRecord
from repro.obs.metrics import Histogram
from repro.obs.perf import BenchArtifact, write_artifact

__all__ = [
    "bench_artifact",
    "add_sequential_metrics",
    "add_parallel_metrics",
    "add_parallel_rollup",
    "artifact_path",
    "save_bench_artifact",
]

#: The interval-solver per-solve observables, in ``per_solve`` order.
_SOLVE_HISTOGRAMS = ("sieve_evals", "bisection_evals", "newton_iters")


def bench_artifact(
    name: str, params: Mapping[str, Any] | None = None
) -> BenchArtifact:
    """A fresh artifact for bench ``name`` with ``params`` pinned."""
    return BenchArtifact(name=name, params=dict(params or {}))


def add_sequential_metrics(
    artifact: BenchArtifact,
    records: Iterable[SequentialRecord],
    per_cell: bool = True,
) -> BenchArtifact:
    """Fold sequential records into ``artifact``.

    Adds the aggregate ``count`` metrics (total bit cost, mul count,
    interval-case tallies, root counts), the total ``wall_seconds``,
    per-``(n, mu)`` cell bit costs (``n20.mu8.bit_cost`` — the gateable
    Table 2 cells) when ``per_cell``, the sieve/bisection/Newton
    per-solve histograms, and the per-phase bit-cost / wall rollup.
    """
    records = list(records)
    hists = {k: Histogram(f"interval.{k}") for k in _SOLVE_HISTOGRAMS}
    total_wall = 0.0
    totals = {"bit_cost": 0, "mul_count": 0, "solves": 0, "n_roots": 0,
              "case1": 0, "case2a": 0, "case2b": 0, "case2c": 0}
    cells: dict[str, int] = {}
    phases: dict[str, dict[str, Any]] = {}
    for r in records:
        total_wall += r.wall_seconds
        totals["bit_cost"] += r.total_bit_cost
        totals["mul_count"] += r.total_mul_count
        totals["solves"] += r.stats.solves
        totals["n_roots"] += r.n_roots
        for case in ("case1", "case2a", "case2b", "case2c"):
            totals[case] += getattr(r.stats, case)
        if per_cell:
            key = f"n{r.degree}.mu{r.mu_digits}.bit_cost"
            cells[key] = cells.get(key, 0) + r.total_bit_cost
        for triple in r.stats.per_solve:
            for key, v in zip(_SOLVE_HISTOGRAMS, triple):
                hists[key].observe(v)
        for ph, st in r.counter.stats.items():
            if not (st.op_count or st.total_bit_cost):
                continue
            slot = phases.setdefault(ph, {"bit_cost": 0, "wall_ns": None})
            slot["bit_cost"] += st.total_bit_cost
        if r.phase_wall:
            for ph, ns in r.phase_wall.items():
                slot = phases.setdefault(ph, {"bit_cost": 0, "wall_ns": None})
                slot["wall_ns"] = (slot["wall_ns"] or 0) + ns
    for key, value in totals.items():
        artifact.add_metric(key, value)
    for key, value in sorted(cells.items()):
        artifact.add_metric(key, value)
    artifact.add_metric("wall_seconds", total_wall, kind="wall")
    for key, h in hists.items():
        artifact.histograms[h.name] = h.as_dict()
    artifact.phases.update(phases)
    return artifact


def add_parallel_metrics(
    artifact: BenchArtifact, records: Iterable[ParallelRecord]
) -> BenchArtifact:
    """Fold simulated-schedule records into ``artifact``.

    Per record: total work, critical path, task count, and the makespan
    of every simulated processor count (``n35.mu8.makespan.p16``) — all
    deterministic ``count`` metrics in bit-operation units.
    """
    for r in records:
        stem = f"n{r.degree}.mu{r.mu_digits}"
        artifact.add_metric(f"{stem}.n_tasks", r.n_tasks)
        artifact.add_metric(f"{stem}.total_work", r.total_work)
        artifact.add_metric(f"{stem}.critical_path", r.critical_path)
        for p, makespan in sorted(r.makespans.items()):
            artifact.add_metric(f"{stem}.makespan.p{p}", makespan)
    return artifact


def add_parallel_rollup(
    artifact: BenchArtifact, rollup: Mapping[str, Any]
) -> BenchArtifact:
    """Attach a real-run executor rollup to the artifact.

    ``rollup`` is :func:`repro.obs.rollup.parallel_rollup`'s dict (an
    empty one is a no-op — the run degraded to sequential).  Stores the
    whole rollup in the artifact's ``parallel`` section (the
    lane-level input for ``repro diff``) and derives the two
    informational wall metrics the gate tracks.
    """
    if not rollup:
        return artifact
    artifact.parallel = dict(rollup)
    artifact.add_metric("parallel.efficiency", rollup["efficiency"],
                        kind="wall")
    artifact.add_metric("parallel.idle_tail_fraction",
                        rollup["idle_tail_fraction"], kind="wall")
    return artifact


def artifact_path(name: str) -> str:
    """Where bench ``name``'s artifact lives: ``<results>/BENCH_<name>.json``."""
    from repro.bench.report import results_dir

    return os.path.join(results_dir(), f"BENCH_{name}.json")


def save_bench_artifact(artifact: BenchArtifact) -> str:
    """Persist ``artifact`` under the bench results directory.

    Returns the path written.  This is the single exit point every
    bench driver uses, so a schema bump happens in exactly one place.
    """
    path = artifact_path(artifact.name)
    write_artifact(path, artifact)
    return path
