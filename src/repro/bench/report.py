"""Paper-style table/series formatting for the benches.

Every bench prints rows in the same layout as the corresponding paper
table or figure so EXPERIMENTS.md can juxtapose them directly.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.bench.runner import ParallelRecord, SequentialRecord

__all__ = [
    "format_table2",
    "format_runtime_grid",
    "format_speedup_grid",
    "format_series",
    "results_dir",
    "save_result",
    "save_result_json",
]


def results_dir() -> str:
    """The bench output directory (created if absent).

    ``REPRO_RESULTS_DIR`` overrides; otherwise ``benchmarks/results/``
    relative to the repository root when run from within it, else the
    CWD.  Shared by the ``.txt`` tables, the ``.json`` series, and the
    ``BENCH_*.json`` artifacts.
    """
    import os

    root = os.environ.get("REPRO_RESULTS_DIR")
    if root is None:
        here = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        cand = os.path.join(here, "benchmarks")
        root = os.path.join(cand if os.path.isdir(cand) else os.getcwd(),
                            "results")
    os.makedirs(root, exist_ok=True)
    return root


def save_result_json(name: str, payload) -> str:
    """Persist a machine-readable copy of a reproduced series.

    ``payload`` must be JSON-serializable; written next to the text
    results as ``<name>.json`` for downstream plotting.
    """
    import json
    import os

    path = os.path.join(results_dir(), f"{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    return path


def save_result(name: str, text: str) -> str:
    """Persist a reproduced table/figure under ``benchmarks/results/``.

    Returns the path written.  The directory is resolved relative to the
    repository root when run from within it, else the CWD.
    """
    import os

    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return path


def format_table2(
    records: Iterable[SequentialRecord],
    value: str = "sim_seconds",
    unit_scale: float = 1e-9,
) -> str:
    """Render the Table 2 layout: rows n/m(n), columns mu (digits).

    ``value`` selects the cell metric: ``sim_seconds`` (bit cost scaled
    by ``unit_scale``), ``wall_seconds``, ``mul_count`` or
    ``bit_cost``.
    """
    by_cell: dict[tuple[int, int], list[float]] = defaultdict(list)
    m_by_degree: dict[int, int] = {}
    mus: set[int] = set()
    for r in records:
        if value == "sim_seconds":
            v = r.total_bit_cost * unit_scale
        elif value == "wall_seconds":
            v = r.wall_seconds
        elif value == "mul_count":
            v = float(r.total_mul_count)
        elif value == "bit_cost":
            v = float(r.total_bit_cost)
        else:
            raise ValueError(f"unknown value selector {value!r}")
        by_cell[(r.degree, r.mu_digits)].append(v)
        m_by_degree[r.degree] = r.m_digits
        mus.add(r.mu_digits)
    mu_list = sorted(mus)
    header = f"{'n':>4s} {'m(n)':>5s} | " + " ".join(f"{mu:>11d}" for mu in mu_list)
    lines = [header, "-" * len(header)]
    for n in sorted(m_by_degree):
        cells = []
        for mu in mu_list:
            vals = by_cell.get((n, mu), [])
            cells.append(
                f"{sum(vals) / len(vals):11.2f}" if vals else f"{'-':>11s}"
            )
        lines.append(f"{n:>4d} {m_by_degree[n]:>5d} | " + " ".join(cells))
    return "\n".join(lines)


def format_runtime_grid(
    records: Iterable[ParallelRecord], unit_scale: float = 1e-9
) -> str:
    """Appendix B layout: rows degree, columns processor count,
    cells simulated running time."""
    recs = list(records)
    procs = sorted({p for r in recs for p in r.makespans})
    header = f"{'n':>4s} | " + " ".join(f"{p:>11d}" for p in procs)
    lines = [header, "-" * len(header)]
    for r in sorted(recs, key=lambda x: x.degree):
        cells = " ".join(
            f"{r.makespans[p] * unit_scale:11.2f}" for p in procs
        )
        lines.append(f"{r.degree:>4d} | {cells}")
    return "\n".join(lines)


def format_speedup_grid(records: Iterable[ParallelRecord]) -> str:
    """Tables 3-7 layout: rows degree, columns processors, cells speedup."""
    recs = list(records)
    procs = sorted({p for r in recs for p in r.makespans})
    header = f"{'degree':>8s} | " + " ".join(f"{p:>7d}" for p in procs)
    lines = [header, "-" * len(header)]
    for r in sorted(recs, key=lambda x: x.degree):
        cells = " ".join(f"{r.speedup(p):7.2f}" for p in procs)
        lines.append(f"{r.degree:>8d} | {cells}")
    return "\n".join(lines)


def format_series(
    title: str,
    xlabel: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[float]],
) -> str:
    """A figure reproduced as a data series (x + named columns)."""
    lines = [title]
    header = f"{xlabel:>8s} | " + " ".join(f"{c:>16s}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        x, rest = row[0], row[1:]
        cells = " ".join(f"{v:16.4g}" for v in rest)
        lines.append(f"{x:8.6g} | {cells}")
    return "\n".join(lines)
