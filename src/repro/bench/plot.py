"""Terminal-friendly ASCII charts for the reproduced figures.

The paper's evaluation is largely *figures*; in a terminal-only
environment the reproduction renders each as an ASCII scatter/line
chart alongside the numeric series.  Log scaling matches the paper's
semi-log presentation of counts and times.
"""

from __future__ import annotations

from math import log10
from typing import Sequence

__all__ = ["ascii_chart"]

_GLYPHS = "ox+*#@%&"


def ascii_chart(
    title: str,
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
    logy: bool = False,
) -> str:
    """Render one or more y-series against shared x values.

    Each series gets a distinct glyph; points landing on the same cell
    show the later series' glyph.  With ``logy`` the y-axis is log10
    (non-positive values are dropped).
    """
    if not xs or not series:
        raise ValueError("need at least one point and one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")

    def ty(v: float) -> float | None:
        if logy:
            return log10(v) if v > 0 else None
        return float(v)

    all_y = [t for ys in series.values() for y in ys if (t := ty(y)) is not None]
    if not all_y:
        raise ValueError("no plottable y values")
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for x, y in zip(xs, ys):
            t = ty(y)
            if t is None:
                continue
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((t - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    def fmt_y(v: float) -> str:
        return f"1e{v:.1f}" if logy else f"{v:.3g}"

    def fmt_x(v: float) -> str:
        return f"{v:.4g}"

    lines = [title]
    lines.append(f"{fmt_y(y_hi):>9s} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 9 + " |" + "".join(row) + "|")
    lines.append(f"{fmt_y(y_lo):>9s} +" + "-" * width + "+")
    lines.append(
        " " * 11 + f"{fmt_x(x_lo):<10s}" + " " * (width - 20)
        + f"{fmt_x(x_hi):>10s}"
    )
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)
