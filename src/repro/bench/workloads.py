"""Workload suites for the benchmark harness.

The primary suite is the paper's (Section 5): characteristic
polynomials of random symmetric 0-1 matrices, degrees 10..70 step 5,
precision mu in {4, 8, 16, 24, 32} decimal digits.  The full degree and
precision grids are the default (one seed per degree);
``REPRO_BENCH_FULL=1`` adds the paper's three seeds per degree and
``REPRO_BENCH_FAST=1`` shrinks the grids for quick iteration.

Extra adversarial families (Wilkinson, Chebyshev, Legendre, Hermite,
close-root products) exercise the same code paths under worst-case
root geometry; they back the ablation benches and the examples.
"""

from __future__ import annotations

import os

from repro.charpoly.generator import (
    CharPolyInput,
    characteristic_input,
    paper_degrees,
    PAPER_SEEDS,
)
from repro.poly.dense import IntPoly
from repro.poly.gcd import is_square_free

__all__ = [
    "paper_suite",
    "bench_degrees",
    "bench_mu_digits",
    "full_grid_enabled",
    "square_free_characteristic_input",
    "wilkinson",
    "chebyshev_t",
    "legendre_scaled",
    "hermite_prob",
    "laguerre_scaled",
    "close_roots",
    "random_real_rooted",
]

#: The paper's precision grid, in decimal digits.
PAPER_MU_DIGITS = (4, 8, 16, 24, 32)


def full_grid_enabled() -> bool:
    """True when REPRO_BENCH_FULL=1 requests the 3-seed paper grid."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def bench_degrees() -> list[int]:
    """Default degree grid: the paper's full 10..70 range (one seed per
    degree by default; REPRO_BENCH_FULL=1 adds the paper's three seeds).
    Set REPRO_BENCH_FAST=1 for a quick subset."""
    if os.environ.get("REPRO_BENCH_FAST", "") == "1":
        return [10, 15, 20, 25, 30]
    return paper_degrees(70)


def bench_mu_digits() -> list[int]:
    """Precision grid (decimal digits); full paper grid unless REPRO_BENCH_FAST."""
    if os.environ.get("REPRO_BENCH_FAST", "") == "1":
        return [4, 16, 32]
    return list(PAPER_MU_DIGITS)


def square_free_characteristic_input(n: int, seed: int) -> CharPolyInput:
    """The paper's workload, retrying seeds until square-free.

    The paper notes "not unexpectedly, the polynomials we generate all
    had distinct roots"; small random 0-1 matrices occasionally have
    repeated eigenvalues, so we skip those instances to stay within the
    analysis' assumptions, exactly as the paper's inputs did.
    """
    s = seed
    for _ in range(64):
        inp = characteristic_input(n, s)
        if is_square_free(inp.poly):
            return inp
        s += 1000
    raise RuntimeError(f"no square-free instance found near seed {seed}")


def paper_suite(
    degrees: list[int] | None = None, seeds: tuple[int, ...] | None = None
) -> list[CharPolyInput]:
    """The Section 5 workload over the requested degree/seed grids."""
    degrees = degrees if degrees is not None else bench_degrees()
    seeds = seeds if seeds is not None else (
        PAPER_SEEDS if full_grid_enabled() else PAPER_SEEDS[:1]
    )
    return [
        square_free_characteristic_input(n, s) for n in degrees for s in seeds
    ]


# ---------------- adversarial / classical families ----------------

def wilkinson(n: int) -> IntPoly:
    """``prod_{k=1..n} (x - k)`` — famously ill-conditioned coefficients."""
    return IntPoly.from_roots(list(range(1, n + 1)))


def chebyshev_t(n: int) -> IntPoly:
    """Chebyshev polynomial of the first kind (integer coefficients);
    roots cluster quadratically near ±1."""
    if n == 0:
        return IntPoly.one()
    t0, t1 = IntPoly.one(), IntPoly.x()
    for _ in range(n - 1):
        t0, t1 = t1, IntPoly((0, 2)) * t1 - t0
    return t1


def legendre_scaled(n: int) -> IntPoly:
    """``2**n n! P_n(x)`` — integer-coefficient Legendre via Bonnet's
    recursion scaled to clear denominators."""
    # p_k holds 2^k k! P_k; recursion: (k+1) P_{k+1} = (2k+1) x P_k - k P_{k-1}
    # => q_{k+1} = 2 (2k+1) x q_k - 4 k^2 q_{k-1} with q_k = 2^k k! P_k.
    q0, q1 = IntPoly.one(), IntPoly((0, 2))
    if n == 0:
        return q0
    for k in range(1, n):
        q0, q1 = q1, IntPoly((0, 2 * (2 * k + 1))) * q1 - (4 * k * k) * q0
    return q1


def hermite_prob(n: int) -> IntPoly:
    """Probabilists' Hermite: ``He_{k+1} = x He_k - k He_{k-1}`` (integer)."""
    h0, h1 = IntPoly.one(), IntPoly.x()
    if n == 0:
        return h0
    for k in range(1, n):
        h0, h1 = h1, IntPoly.x() * h1 - k * h0
    return h1


def laguerre_scaled(n: int) -> IntPoly:
    """``(-1)^n n! L_n(x)`` — integer-coefficient Laguerre, all roots > 0."""
    # (k+1) L_{k+1} = (2k+1-x) L_k - k L_{k-1}; scale s_k = k! L_k:
    # s_{k+1} = (2k+1-x) s_k - k^2 s_{k-1}
    s0, s1 = IntPoly.one(), IntPoly((1, -1))
    if n == 0:
        return s0
    for k in range(1, n):
        s0, s1 = s1, IntPoly((2 * k + 1, -1)) * s1 - (k * k) * s0
    p = s1
    return p if p.leading_coefficient > 0 else -p


def random_real_rooted(n: int, seed: int, scale: int = 100) -> IntPoly:
    """A random degree-``n`` integer polynomial with ``n`` real roots,
    most of them irrational.

    Built as a product of random real-rooted quadratics
    ``x^2 - s x + p`` (discriminant forced positive) and, for odd
    degree, one linear factor.  Unlike :func:`IntPoly.from_roots`, the
    roots are genuinely irrational, exercising the sieve/Newton path
    rather than the exact-grid-hit shortcuts.
    """
    import random as _random

    rng = _random.Random(f"realrooted-{n}-{seed}-{scale}")
    p = IntPoly.one()
    deg = 0
    while deg + 2 <= n:
        s = rng.randint(-scale, scale)
        # force discriminant s^2 - 4 prod > 0
        hi = (s * s - 1) // 4
        prod = rng.randint(-scale * scale, hi) if hi > -scale * scale else hi
        p = p * IntPoly((prod, -s, 1))
        deg += 2
    if deg < n:
        p = p * IntPoly((-rng.randint(-scale, scale), 1))
    return p


def close_roots(n: int, gap_bits: int) -> IntPoly:
    """``prod (2**g x - (2**g k + 1)) (x - k)`` pairs: adjacent roots at
    distance ``2**-gap_bits`` — stresses the sieve and root separation."""
    g = gap_bits
    p = IntPoly.one()
    for k in range(1, n // 2 + 1):
        p = p * IntPoly((-k, 1))
        p = p * IntPoly((-((k << g) + 1), 1 << g))
    if n % 2 == 1:
        p = p * IntPoly((n, 1))  # one extra root at -n
    return p
