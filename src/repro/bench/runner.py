"""Experiment drivers shared by the benchmark files.

One sequential record per (input, mu) carries everything the paper's
tables and figures need: wall time, phase-split multiplication counts
and bit costs, interval-solver statistics, and the derived simulated
time.  One parallel record additionally carries the simulated makespans
across processor counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.predict import predict_all
from repro.charpoly.generator import CharPolyInput
from repro.core.rootfinder import RealRootFinder, RootResult
from repro.core.scaling import digits_to_bits
from repro.core.sieve import IntervalStats
from repro.core.tasks import build_task_graph
from repro.costmodel.backend import counter_for
from repro.costmodel.counter import CostCounter, PhaseStats
from repro.obs.rollup import phase_wall_ns
from repro.obs.trace import Tracer
from repro.poly.roots_bounds import root_bound_bits
from repro.sched.simulator import speedup_curve

__all__ = ["SequentialRecord", "ParallelRecord", "run_sequential", "run_parallel"]

#: Processor counts of the paper's Tables 3-7 / Figures 9-13.
PAPER_PROCESSORS = [1, 2, 4, 8, 16]


@dataclass
class SequentialRecord:
    """All observables of one sequential instrumented run."""

    degree: int
    seed: int
    m_bits: int
    mu_digits: int
    mu_bits: int
    wall_seconds: float
    n_roots: int
    counter: CostCounter
    stats: IntervalStats
    result: RootResult
    r_bits: int
    #: exclusive wall nanoseconds per span phase (``None`` unless the
    #: run was traced): the wall-time analogue of the bit-cost split.
    phase_wall: dict[str, int] | None = field(default=None)

    @property
    def m_digits(self) -> int:
        """Coefficient size in decimal digits (the paper's m(n) units)."""
        return max(1, round(self.m_bits * 0.30103))

    def phase(self, prefix: str) -> PhaseStats:
        return self.counter.phase_stats(prefix)

    @property
    def total_bit_cost(self) -> int:
        return self.counter.total_bit_cost

    @property
    def total_mul_count(self) -> int:
        return self.counter.mul_count

    def predictions(self, worst_case: bool = False):
        return predict_all(
            self.degree, self.m_bits, self.mu_bits, self.r_bits, worst_case
        )


@dataclass
class ParallelRecord:
    """Simulated multiprocessor replay of one run's task graph."""

    degree: int
    seed: int
    mu_digits: int
    n_tasks: int
    total_work: int
    critical_path: int
    makespans: dict[int, int]
    overhead: int

    def speedup(self, p: int) -> float:
        return self.makespans[1] / self.makespans[p]


def run_sequential(
    inp: CharPolyInput, mu_digits: int, trace_walls: bool = False,
    backend: str = "python",
) -> SequentialRecord:
    """Instrumented sequential run of the full algorithm.

    With ``trace_walls=True`` the run is executed under a real
    :class:`~repro.obs.trace.Tracer` and the record's ``phase_wall``
    carries the exclusive per-phase wall-time rollup — how the bit-cost
    phase split maps onto real seconds on this host.  ``backend``
    selects the arithmetic backend (docs/BACKENDS.md); charged counts
    are backend-invariant, only wall time moves.
    """
    mu_bits = digits_to_bits(mu_digits)
    counter = counter_for(backend)
    tracer = Tracer(counter=counter) if trace_walls else None
    finder = RealRootFinder(mu_bits=mu_bits, counter=counter, tracer=tracer,
                            backend=backend)
    result = finder.find_roots(inp.poly)
    # Single source of truth for wall time: the result's own bracket.
    # (A second perf_counter bracket here used to disagree with it by
    # the record-construction overhead.)
    return SequentialRecord(
        degree=inp.degree,
        seed=inp.seed,
        m_bits=inp.coeff_bits,
        mu_digits=mu_digits,
        mu_bits=mu_bits,
        wall_seconds=result.elapsed_seconds,
        n_roots=len(result),
        counter=counter,
        stats=result.stats,
        result=result,
        r_bits=root_bound_bits(inp.poly),
        phase_wall=phase_wall_ns(tracer.spans) if tracer is not None else None,
    )


def run_parallel(
    inp: CharPolyInput,
    mu_digits: int,
    processors: list[int] | None = None,
    overhead: int = 0,
    queue_overhead: int = 0,
) -> ParallelRecord:
    """Record the task graph once, then simulate every processor count."""
    mu_bits = digits_to_bits(mu_digits)
    counter = CostCounter()
    tg = build_task_graph(inp.poly, mu_bits, counter)
    tg.graph.run_recorded(counter)
    procs = processors if processors is not None else PAPER_PROCESSORS
    curve = speedup_curve(tg.graph, procs, overhead, queue_overhead)
    gstats = tg.graph.stats(overhead)
    return ParallelRecord(
        degree=inp.degree,
        seed=inp.seed,
        mu_digits=mu_digits,
        n_tasks=len(tg.graph),
        total_work=gstats.total_work,
        critical_path=gstats.critical_path,
        makespans={p: r.makespan for p, r in curve.items()},
        overhead=overhead,
    )
