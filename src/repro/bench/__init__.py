"""Benchmark harness: workload suites, experiment drivers, paper-style
table formatting."""

from repro.bench.workloads import (
    paper_suite,
    bench_degrees,
    bench_mu_digits,
    full_grid_enabled,
    square_free_characteristic_input,
    wilkinson,
    chebyshev_t,
    legendre_scaled,
    hermite_prob,
    laguerre_scaled,
    close_roots,
)
from repro.bench.runner import (
    SequentialRecord,
    ParallelRecord,
    run_sequential,
    run_parallel,
    PAPER_PROCESSORS,
)
from repro.bench.report import (
    format_table2,
    format_runtime_grid,
    format_speedup_grid,
    format_series,
    results_dir,
)
from repro.bench.artifact import (
    add_parallel_metrics,
    add_sequential_metrics,
    artifact_path,
    bench_artifact,
    save_bench_artifact,
)

__all__ = [
    "paper_suite", "bench_degrees", "bench_mu_digits", "full_grid_enabled",
    "square_free_characteristic_input",
    "wilkinson", "chebyshev_t", "legendre_scaled", "hermite_prob",
    "laguerre_scaled", "close_roots",
    "SequentialRecord", "ParallelRecord", "run_sequential", "run_parallel",
    "PAPER_PROCESSORS",
    "format_table2", "format_runtime_grid", "format_speedup_grid",
    "format_series", "results_dir",
    "bench_artifact", "add_sequential_metrics", "add_parallel_metrics",
    "artifact_path", "save_bench_artifact",
]
