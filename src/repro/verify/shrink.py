"""Deterministic minimization of failing fuzz cases + the replay corpus.

A raw fuzz failure is an arbitrary-degree polynomial with huge
coefficients at some precision; the *useful* artifact is the smallest
case that still fails the same way.  :func:`shrink_case` runs a greedy
fixed-point loop over root-preserving and structure-reducing
transformations (all exact — this codebase never rounds):

* drop the precision ``mu`` (binary descent, then minus one);
* replace the polynomial by its square-free part (same distinct roots);
* replace the polynomial by its derivative (degree minus one; still
  all-real-rooted, by Rolle's theorem);
* strip integer content (same roots, smaller coefficients);
* halve every coefficient (may destroy real-rootedness — the failure
  predicate simply rejects such candidates).

The shrunk case is then committed to the **corpus**: one JSON file per
historical failure under ``tests/corpus/``, replayed by the tier-1
suite on every run.  A corpus entry either expects full cross-engine
``agreement`` (a fixed regression) or a specific typed error from a
named operation (a contract the fix introduced).
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Callable

from repro.poly.dense import IntPoly
from repro.verify.generators import FuzzCase

__all__ = [
    "CORPUS_SCHEMA",
    "shrink_case",
    "corpus_entry",
    "write_corpus_case",
    "load_corpus_dir",
    "replay_corpus_entry",
]

CORPUS_SCHEMA = "repro.fuzz-corpus/1"


def _candidates(case: FuzzCase) -> list[FuzzCase]:
    """Ordered smaller variants of a case (most aggressive first)."""
    p = case.poly
    out: list[FuzzCase] = []
    seen_mu = set()
    for mu2 in (1, case.mu // 2, case.mu - 1):
        if 1 <= mu2 < case.mu and mu2 not in seen_mu:
            seen_mu.add(mu2)
            out.append(case.replace(mu=mu2))
    if p.degree >= 2:
        from repro.poly.gcd import square_free_part

        sf = square_free_part(p)
        if sf.degree < p.degree:
            out.append(case.replace(coeffs=tuple(sf.coeffs)))
        out.append(case.replace(coeffs=tuple(p.derivative().coeffs)))
    content, prim = p.primitive_part()
    if content > 1:
        out.append(case.replace(coeffs=tuple(prim.coeffs)))
    if p.height() > 8:
        halved = IntPoly(tuple(c // 2 for c in p.coeffs))
        if not halved.is_zero() and halved.degree == p.degree:
            out.append(case.replace(coeffs=tuple(halved.coeffs)))
    return out


def shrink_case(
    case: FuzzCase,
    fails: Callable[[FuzzCase], bool],
    *,
    max_steps: int = 64,
) -> FuzzCase:
    """Greedy deterministic minimization.

    ``fails(candidate)`` must return True when the candidate still
    exhibits the original failure; it must be total (candidates that
    crash differently should simply return False).  The input case is
    assumed failing.  Terminates after at most ``max_steps`` accepted
    reductions (each strictly reduces degree, coefficients, or ``mu``,
    so the loop is finite regardless).
    """
    cur = case
    for _ in range(max_steps):
        for cand in _candidates(cur):
            ok = False
            try:
                ok = fails(cand)
            except Exception:  # noqa: BLE001 — a crashing candidate is rejected
                ok = False
            if ok:
                cur = cand.replace(note=(case.note + " [shrunk]").strip())
                break
        else:
            return cur
    return cur


# -- corpus ------------------------------------------------------------------

def corpus_entry(
    case: FuzzCase,
    *,
    expect: Any = "agreement",
    finding: dict[str, Any] | None = None,
    note: str = "",
) -> dict[str, Any]:
    """Build one corpus record.

    ``expect`` is either the string ``"agreement"`` — replay must
    produce zero findings across every engine pair — or an object
    ``{"op": "refine_root", "scaled": v, "mu_to": m, "raises": "ErrType"}``
    asserting that the named operation raises the named error type.
    ``finding`` preserves the original failure for provenance.
    """
    entry: dict[str, Any] = {
        "schema": CORPUS_SCHEMA,
        "case": case.to_json(),
        "expect": expect,
    }
    if finding:
        entry["finding"] = finding
    if note:
        entry["note"] = note
    return entry


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-") or "case"


def write_corpus_case(
    corpus_dir: str,
    finding: "Any",
    *,
    name: str | None = None,
) -> str:
    """Write one shrunk finding as a corpus file; returns the path.

    ``finding`` is a :class:`repro.verify.fuzz.FuzzFinding`.  The file
    is named from the failure kind, guilty engine, and case provenance
    so re-runs overwrite rather than accumulate.
    """
    case = finding.case
    entry = corpus_entry(case, expect="agreement",
                         finding={"kind": finding.kind,
                                  "engine": finding.engine,
                                  "detail": finding.detail})
    stem = name or _slug(
        f"{finding.kind}-{finding.engine}-{case.family}"
        f"-s{case.seed}-i{case.index}"
    )
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, f"{stem}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entry, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def load_corpus_dir(corpus_dir: str) -> list[tuple[str, dict[str, Any]]]:
    """Load every ``*.json`` corpus entry, sorted by filename."""
    out: list[tuple[str, dict[str, Any]]] = []
    if not os.path.isdir(corpus_dir):
        return out
    for fname in sorted(os.listdir(corpus_dir)):
        if not fname.endswith(".json"):
            continue
        path = os.path.join(corpus_dir, fname)
        with open(path, encoding="utf-8") as fh:
            entry = json.load(fh)
        if entry.get("schema") != CORPUS_SCHEMA:
            raise ValueError(f"{path}: unknown corpus schema "
                             f"{entry.get('schema')!r}")
        out.append((path, entry))
    return out


def replay_corpus_entry(entry: dict[str, Any], engines: "Any") -> list:
    """Replay one corpus entry; return the list of violations (empty = pass).

    ``engines`` is a :class:`repro.verify.fuzz.EngineSet`.  For
    ``expect == "agreement"`` this is exactly the fuzzer's
    :func:`~repro.verify.fuzz.check_case`.  For a typed-error
    expectation the named operation is invoked and must raise the
    named exception type.
    """
    from repro.verify.fuzz import check_case

    case = FuzzCase.from_json(entry["case"])
    expect = entry.get("expect", "agreement")
    if expect == "agreement":
        return check_case(case, engines)
    if isinstance(expect, dict) and expect.get("op") == "refine_root":
        import builtins

        import repro.core.refine as refine_mod

        err_name = expect["raises"]
        err_type = getattr(refine_mod, err_name,
                           getattr(builtins, err_name, None))
        if err_type is None:
            return [f"unknown error type {err_name!r} in corpus expectation"]
        try:
            refine_mod.refine_root(case.poly, int(expect["scaled"]),
                                   case.mu, int(expect["mu_to"]))
        except err_type:
            return []
        except Exception as exc:  # noqa: BLE001
            return [f"expected {err_name}, got {exc!r}"]
        return [f"expected {err_name}, but refine_root succeeded"]
    return [f"unknown corpus expectation {expect!r}"]
