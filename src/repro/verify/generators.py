"""Seeded adversarial input generators for the differential fuzzer.

Random smoke tests sample polynomials whose roots are comfortably
separated; the bugs that survive them hide in near-degenerate
separations (Kerber & Sagraloff, *Root Refinement for Real
Polynomials*; Sagraloff, *On the Complexity of Real Root Isolation*).
Each family here is engineered toward one such regime:

``integer``
    distinct integer roots — the benign control group;
``cluster``
    tight rational clusters at separation around ``2**-mu``: below,
    at, and above the output grid, so shared cells and Case-1/2a
    coincidences all occur;
``repeated``
    repeated roots of varying multiplicity (exercises the square-free
    fallbacks and Yun's decomposition);
``wilkinson``
    Wilkinson-style ``(x-1)...(x-n)`` with optional shift/scale — the
    classic ill-conditioned family (huge coefficients, unit
    separations);
``chebyshev``
    Chebyshev ``T_n`` — all real roots, irrational, crowding toward
    the interval ends;
``charpoly``
    characteristic polynomials of random symmetric integer matrices
    (the paper's Section 5 workload; large coefficients);
``grid``
    roots lying exactly on the output grid ``k / 2**j`` (exact-hit
    sign logic, the measure-zero events);
``degenerate``
    degrees 0-2, negative leading coefficients, huge linear
    coefficients, double roots — every small-input special case;
``mu_boundary``
    precision at its floor (``mu`` of 1-3) where every cell is coarse.

Everything is deterministic from ``(seed, index)``; a
:class:`FuzzCase` is plain data that serializes to JSON so failures
can be committed to the corpus and replayed forever.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.poly.dense import IntPoly

__all__ = ["FuzzCase", "CASE_FAMILIES", "generate_cases", "make_case"]


@dataclass(frozen=True)
class FuzzCase:
    """One differential-fuzz input: a polynomial plus an output precision.

    ``coeffs`` is the low-to-high coefficient tuple (plain ints, so a
    case pickles and serializes); ``mu`` is the output precision in
    bits; ``family``/``seed``/``index`` record provenance; ``note`` is
    free-form (e.g. the intended separation regime).
    """

    family: str
    seed: int
    index: int
    coeffs: tuple[int, ...]
    mu: int
    note: str = ""

    @property
    def poly(self) -> IntPoly:
        return IntPoly(self.coeffs)

    @property
    def label(self) -> str:
        p = self.poly
        return (f"{self.family}[{self.seed}/{self.index}] "
                f"deg={p.degree} mu={self.mu}"
                + (f" ({self.note})" if self.note else ""))

    def to_json(self) -> dict[str, Any]:
        """Plain-data rendering (corpus files, JSONL findings log)."""
        return {
            "family": self.family,
            "seed": self.seed,
            "index": self.index,
            "coeffs": list(self.coeffs),
            "mu": self.mu,
            "note": self.note,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FuzzCase":
        """Inverse of :meth:`to_json` (tolerates missing provenance)."""
        return cls(
            family=str(data.get("family", "corpus")),
            seed=int(data.get("seed", 0)),
            index=int(data.get("index", 0)),
            coeffs=tuple(int(c) for c in data["coeffs"]),
            mu=int(data["mu"]),
            note=str(data.get("note", "")),
        )

    def replace(self, **changes: Any) -> "FuzzCase":
        """A copy with some fields swapped (shrinker primitive)."""
        from dataclasses import replace as _replace

        return _replace(self, **changes)


def make_case(poly: IntPoly, mu: int, family: str = "manual",
              seed: int = 0, index: int = 0, note: str = "") -> FuzzCase:
    """Wrap a polynomial + precision into a :class:`FuzzCase`."""
    return FuzzCase(family=family, seed=seed, index=index,
                    coeffs=tuple(poly.coeffs), mu=mu, note=note)


def _from_rational_roots(pairs: list[tuple[int, int]]) -> IntPoly:
    """``prod (den*x - num)`` — integer polynomial with the given roots."""
    p = IntPoly.one()
    for num, den in pairs:
        p = p * IntPoly((-num, den))
    return p


# -- families ----------------------------------------------------------------

def _gen_integer(rng: random.Random) -> tuple[IntPoly, int, str]:
    k = rng.randint(1, 7)
    roots = sorted(rng.sample(range(-40, 40), k))
    mu = rng.choice((4, 8, 16, 32, 48))
    return IntPoly.from_roots(roots), mu, f"{k} integer roots"


def _gen_cluster(rng: random.Random) -> tuple[IntPoly, int, str]:
    mu = rng.choice((4, 8, 12, 16))
    # Separation 2**-(mu+off): off < 0 resolvable, off == 0 borderline,
    # off > 0 genuinely shared cells.
    off = rng.choice((-2, -1, 0, 1, 2, 4))
    den = 1 << max(1, mu + off)
    base = rng.randint(-5, 5)
    k = rng.randint(2, 4)
    start = rng.randint(-3, 3)
    pairs = [(base * den + start + j, den) for j in range(k)]
    p = _from_rational_roots(pairs)
    # An optional far-away root keeps the tree non-trivial.
    if rng.random() < 0.5:
        p = p * IntPoly.from_roots([rng.choice((-17, 23))])
    return p, mu, f"cluster sep=2^-{mu + off}"


def _gen_repeated(rng: random.Random) -> tuple[IntPoly, int, str]:
    roots = rng.sample(range(-12, 12), rng.randint(1, 3))
    p = IntPoly.one()
    mults = []
    for r in roots:
        m = rng.randint(1, 4)
        mults.append(m)
        for _ in range(m):
            p = p * IntPoly((-r, 1))
    mu = rng.choice((4, 8, 16, 24))
    return p, mu, f"multiplicities {sorted(mults, reverse=True)}"


def _gen_wilkinson(rng: random.Random) -> tuple[IntPoly, int, str]:
    n = rng.randint(5, 11)
    p = IntPoly.from_roots(list(range(1, n + 1)))
    shift = rng.randint(-3, 3)
    if shift:
        p = p.compose_linear(1, shift)
    mu = rng.choice((8, 16, 32))
    return p, mu, f"wilkinson n={n} shift={shift}"


def _chebyshev(n: int) -> IntPoly:
    a, b = IntPoly.one(), IntPoly.x()
    for _ in range(n - 1):
        a, b = b, IntPoly((0, 2)) * b - a
    return b if n >= 1 else a


def _gen_chebyshev(rng: random.Random) -> tuple[IntPoly, int, str]:
    n = rng.randint(3, 11)
    p = _chebyshev(n)
    # Optionally widen the root interval away from (-1, 1) so the
    # scaled grid is exercised at both magnitudes: T_n(x/s).
    s = rng.choice((1, 1, 2, 4))
    if s > 1:
        # p(x/s) cleared of denominators: s**n * sum c_j (x/s)**j.
        p = IntPoly(tuple(c * s ** (p.degree - j)
                          for j, c in enumerate(p.coeffs)))
    mu = rng.choice((8, 16, 32, 48))
    return p, mu, f"chebyshev n={n} scale={s}"


def _gen_charpoly(rng: random.Random) -> tuple[IntPoly, int, str]:
    from repro.charpoly.generator import characteristic_input

    n = rng.randint(4, 9)
    seed = rng.randint(0, 10_000)
    bound = rng.choice((None, None, 3, 9))
    inp = characteristic_input(n, seed, entry_bound=bound)
    mu = rng.choice((8, 16, 24))
    return inp.poly, mu, f"charpoly n={n} m={inp.coeff_bits}b"


def _gen_grid(rng: random.Random) -> tuple[IntPoly, int, str]:
    j = rng.randint(1, 6)
    mu = j + rng.choice((0, 0, 1, 4))
    den = 1 << j
    k = rng.randint(1, 4)
    nums = sorted(rng.sample(range(-5 * den, 5 * den), k))
    p = _from_rational_roots([(num, den) for num in nums])
    return p, mu, f"{k} exact grid roots at 2^-{j}, mu={mu}"


def _gen_degenerate(rng: random.Random) -> tuple[IntPoly, int, str]:
    kind = rng.choice(("const", "linear", "linear_big", "double",
                       "quad_close", "quad_irrational"))
    mu = rng.choice((1, 4, 16))
    if kind == "const":
        return IntPoly.constant(rng.choice((-7, -1, 3, 1 << 30))), mu, "degree 0"
    if kind == "linear":
        a = rng.choice((-9, -2, 2, 5))
        b = rng.randint(-20, 20)
        return IntPoly((b, a)), mu, "degree 1"
    if kind == "linear_big":
        a = rng.choice((1, -1)) * (rng.randint(1, 9) << 200)
        b = rng.randint(-(1 << 205), 1 << 205)
        return IntPoly((b, a)), mu, "degree 1, 200-bit coefficients"
    if kind == "double":
        r = rng.randint(-9, 9)
        return IntPoly.from_roots([r, r]), mu, f"double root {r}"
    if kind == "quad_close":
        den = 1 << (mu + rng.choice((0, 1, 2)))
        a = rng.randint(-3, 3) * den + rng.randint(-2, 2)
        return _from_rational_roots([(a, den), (a + 1, den)]), mu, "close quad"
    return IntPoly((-2, 0, 1)) * rng.choice((1, -1)), mu, "sqrt2 pair"


def _gen_mu_boundary(rng: random.Random) -> tuple[IntPoly, int, str]:
    mu = rng.randint(1, 3)
    kind = rng.choice(("integer", "rational", "cluster"))
    if kind == "integer":
        roots = sorted(rng.sample(range(-6, 6), rng.randint(2, 5)))
        return IntPoly.from_roots(roots), mu, f"mu={mu} integer"
    if kind == "rational":
        den = rng.choice((3, 5, 7))
        nums = sorted(rng.sample(range(-12, 12), rng.randint(2, 4)))
        return _from_rational_roots([(n, den) for n in nums]), mu, f"mu={mu} /{den}"
    den = 64
    a = rng.randint(-64, 64)
    return _from_rational_roots([(a, den), (a + 3, den)]), mu, f"mu={mu} shared cell"


#: name -> generator drawing one ``(poly, mu, note)`` from an ``rng``.
CASE_FAMILIES: dict[str, Callable[[random.Random], tuple[IntPoly, int, str]]] = {
    "integer": _gen_integer,
    "cluster": _gen_cluster,
    "repeated": _gen_repeated,
    "wilkinson": _gen_wilkinson,
    "chebyshev": _gen_chebyshev,
    "charpoly": _gen_charpoly,
    "grid": _gen_grid,
    "degenerate": _gen_degenerate,
    "mu_boundary": _gen_mu_boundary,
}


def generate_cases(
    seed: int,
    budget: int,
    families: list[str] | None = None,
) -> Iterator[FuzzCase]:
    """Yield ``budget`` deterministic cases, round-robin over families.

    Case ``index`` is derived only from ``(seed, index)`` — shrinking
    one case or re-running a subset never perturbs the others.
    """
    names = list(families) if families else list(CASE_FAMILIES)
    unknown = [n for n in names if n not in CASE_FAMILIES]
    if unknown:
        raise ValueError(
            f"unknown fuzz families {unknown}; known: {sorted(CASE_FAMILIES)}"
        )
    for index in range(budget):
        family = names[index % len(names)]
        rng = random.Random(f"repro-fuzz-{seed}-{family}-{index}")
        poly, mu, note = CASE_FAMILIES[family](rng)
        yield FuzzCase(family=family, seed=seed, index=index,
                       coeffs=tuple(poly.coeffs), mu=mu, note=note)
