"""Deterministic fault injection for the parallel executor.

The executor's reliability story — per-task timeouts, dead-worker
respawn, graceful degradation to the certified sequential path — is
only trustworthy if it is *exercised*.  This module injects three
fault kinds at **chosen dispatch indices** (the executor numbers every
``apply_async`` submission 0, 1, 2, ... within a call), so failure
timing is reproducible rather than left to OS races:

* **poisoned task** (``poison_at``): the task body raises
  :class:`InjectedFault` inside the worker.  The pool routes the
  exception back, the executor counts ``executor.worker_failures`` and
  degrades to the sequential path.
* **stalled task** (``stall_at``): the task body sleeps past the
  executor's ``task_timeout``.  The dispatch loop times out, counts
  ``executor.task_timeouts``, and degrades.
* **worker death** (``kill_at``): the task body SIGKILLs *its own
  worker process* mid-task — the deterministic rendering of "a worker
  died while holding work".  The task's result never arrives, so the
  task times out (``executor.task_timeouts``) and the pid change is
  detected (``executor.worker_failures``).
* **slow task** (``slow_at``): the task body sleeps ``slow_seconds``
  and then runs the *real* task — deterministic latency injection.
  Below the executor's ``task_timeout`` it exercises the
  nothing-should-happen path (no timeout, no retry); above it, the
  retry resubmits while the slow original eventually returns a late
  result the executor must discard as stale
  (``executor.stale_results``).

Since PR 5 the executor owns a resilience layer
(:mod:`repro.resilience`): a faulted task is **retried** on a fresh
worker (``executor.retries``), repeated failures trip a circuit
breaker (``executor.breaker_open``) that routes task bodies to the
parent process, and only a broken pool degrades the whole call
(``executor.fallbacks``).  In every scenario the call still returns
the exact, sequential-parity answer; the fault-matrix tests close the
loop by certifying that answer with
:func:`repro.core.certify.certify_roots` and asserting the exact
counter increments.

Attach a plan via ``ParallelRootFinder(..., faults=FaultPlan(...))``;
the executor calls :meth:`FaultPlan.intercept` once per submission.
The replacement task bodies are module-level functions so they pickle
into ``spawn`` workers.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "InjectedFault",
    "FaultPlan",
    "poison_worker",
    "stall_worker",
    "suicide_worker",
    "slow_worker",
]


class InjectedFault(RuntimeError):
    """Raised by a poisoned task body — never by production code."""


def poison_worker(args: Any) -> Any:
    """Pool task body that fails immediately (picklable)."""
    raise InjectedFault("poisoned task (fault injection)")


def stall_worker(args: Any) -> Any:
    """Pool task body that sleeps past any reasonable ``task_timeout``.

    ``args = (seconds,)``.  Raises afterwards so that even an
    over-generous timeout cannot mistake the stall for a result.
    """
    time.sleep(float(args[0]))
    raise InjectedFault("stalled task woke up (fault injection)")


def slow_worker(args: Any) -> Any:
    """Pool task body that injects latency, then runs the real task.

    ``args = (seconds, fn, payload)``.  Unlike :func:`stall_worker` the
    answer it eventually produces is *correct* — the interesting part
    is when it arrives relative to the executor's per-task deadline.
    """
    seconds, fn, payload = args
    time.sleep(float(seconds))
    return fn(payload)


def suicide_worker(args: Any) -> Any:
    """Pool task body that SIGKILLs its own worker process.

    The deterministic "worker died mid-task" scenario: the kill happens
    *inside* the task, so the task is guaranteed in-flight (unlike
    killing an arbitrary pool pid, which races with the dispatcher).
    """
    os.kill(os.getpid(), signal.SIGKILL)
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass
class FaultPlan:
    """Deterministic fault schedule keyed by dispatch index.

    ``poison_at`` / ``stall_at`` / ``kill_at`` / ``slow_at`` are
    collections of submission indices (0-based, in executor dispatch
    order — retries consume fresh indices) whose task bodies are
    replaced by the corresponding fault.  ``injected`` records
    ``(index, kind)`` for every replacement actually made, so tests can
    assert the schedule fired.
    """

    poison_at: frozenset[int] = frozenset()
    stall_at: frozenset[int] = frozenset()
    kill_at: frozenset[int] = frozenset()
    slow_at: frozenset[int] = frozenset()
    stall_seconds: float = 60.0
    slow_seconds: float = 0.5
    injected: list[tuple[int, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.poison_at = frozenset(self.poison_at)
        self.stall_at = frozenset(self.stall_at)
        self.kill_at = frozenset(self.kill_at)
        self.slow_at = frozenset(self.slow_at)
        sets = [self.poison_at, self.stall_at, self.kill_at, self.slow_at]
        overlap: frozenset[int] = frozenset()
        for i, a in enumerate(sets):
            for b in sets[i + 1:]:
                overlap |= a & b
        if overlap:
            raise ValueError(f"conflicting faults at indices {sorted(overlap)}")

    def intercept(
        self, index: int, fn: Callable, payload: Any, finder: Any
    ) -> tuple[Callable, Any]:
        """Executor hook: possibly replace one submission's task body.

        Returns the ``(fn, payload)`` actually submitted.  Fault-free
        indices pass through untouched.
        """
        if index in self.kill_at:
            self.injected.append((index, "kill"))
            return suicide_worker, payload
        if index in self.poison_at:
            self.injected.append((index, "poison"))
            return poison_worker, payload
        if index in self.stall_at:
            self.injected.append((index, "stall"))
            return stall_worker, (self.stall_seconds,)
        if index in self.slow_at:
            self.injected.append((index, "slow"))
            return slow_worker, (self.slow_seconds, fn, payload)
        return fn, payload
