"""Differential verification: cross-engine fuzzing, shrinking, fault injection.

Three pillars, one goal — turn "the engines should agree" into a
machine-checked, attributed, replayable fact:

* :mod:`repro.verify.generators` + :mod:`repro.verify.fuzz` — seeded
  adversarial inputs run through every engine pair, every claim closed
  by the exact Sturm certificate;
* :mod:`repro.verify.shrink` — deterministic minimization of failures
  and the committed ``tests/corpus/`` replayed by tier-1 forever;
* :mod:`repro.verify.faults` — deterministic worker-death / timeout /
  poisoned-task injection against the parallel executor.

CLI entry point: ``repro fuzz`` (see docs/VERIFICATION.md).
"""

from repro.verify.faults import FaultPlan, InjectedFault
from repro.verify.fuzz import (
    ENGINE_NAMES,
    EngineSet,
    FuzzFinding,
    FuzzReport,
    check_case,
    run_fuzz,
)
from repro.verify.generators import CASE_FAMILIES, FuzzCase, generate_cases, make_case
from repro.verify.shrink import (
    CORPUS_SCHEMA,
    corpus_entry,
    load_corpus_dir,
    replay_corpus_entry,
    shrink_case,
    write_corpus_case,
)

__all__ = [
    "ENGINE_NAMES",
    "CASE_FAMILIES",
    "CORPUS_SCHEMA",
    "EngineSet",
    "FaultPlan",
    "FuzzCase",
    "FuzzFinding",
    "FuzzReport",
    "InjectedFault",
    "check_case",
    "corpus_entry",
    "generate_cases",
    "load_corpus_dir",
    "make_case",
    "replay_corpus_entry",
    "run_fuzz",
    "shrink_case",
    "write_corpus_case",
]
