"""The differential fuzzer: every engine must agree bit for bit.

The paper's value proposition is *exactness*: every engine in this
repository claims to return exactly ``ceil(2**mu * x)`` for every real
root ``x``.  That claim is falsifiable, cheaply: run the same input
through every engine pair and compare the integers.  This module does
that systematically over the adversarial families of
:mod:`repro.verify.generators`, and closes every case with the exact
Sturm certificate (:func:`repro.core.certify.certify_roots`) so a
disagreement is *attributed* — the engine whose claim fails the
certificate is the guilty one — rather than merely detected.

Engines under test:

* ``hybrid`` / ``bisection`` / ``newton`` — the three sequential
  interval-solver strategies of :class:`repro.core.rootfinder.RealRootFinder`;
* ``parallel`` — :class:`repro.sched.executor.ParallelRootFinder` on a
  persistent process pool (kept warm across the whole fuzz run);
* ``sturm`` — the classical :class:`repro.baselines.sturm_bisect.SturmBisectFinder`.

Each case additionally round-trips through
:func:`repro.core.refine.refine_result` (``mu -> mu'``) and checks the
refined output against a direct run at ``mu'`` *and* against the
coarse grid (``ceil(s' / 2**(mu'-mu)) == s`` — the ``mu -> mu' -> mu``
consistency law), then certifies the refined claim too.

On failure, :func:`run_fuzz` minimizes the case with
:mod:`repro.verify.shrink` and (optionally) emits a corpus file that
the tier-1 suite replays forever.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.baselines.sturm_bisect import SturmBisectFinder
from repro.core.certify import CertificationError, certify_roots
from repro.costmodel.backend import null_counter_for, resolve_backend
from repro.core.refine import refine_result
from repro.core.rootfinder import RealRootFinder
from repro.core.scaling import ceil_div
from repro.poly.dense import IntPoly
from repro.verify.generators import FuzzCase, generate_cases

__all__ = [
    "ENGINE_NAMES",
    "EngineSet",
    "FuzzFinding",
    "FuzzReport",
    "check_case",
    "run_fuzz",
]

#: Every comparable engine; ``hybrid`` doubles as the reference.
ENGINE_NAMES = ("hybrid", "bisection", "newton", "parallel", "sturm")


class EngineSet:
    """Named engines sharing one persistent worker pool.

    ``run(name, p, mu)`` returns the ascending scaled distinct-root
    approximations the engine claims.  The ``parallel`` engine keeps a
    single :class:`~repro.sched.executor.ParallelRootFinder` (and its
    pool) warm for the whole fuzz run — the service-style shape — and
    retargets its precision per call.  Use as a context manager (or
    call :meth:`close`) to shut the pool down.

    ``backend`` selects the arithmetic backend every engine computes on
    (see docs/BACKENDS.md) — the lever of the backend-parity suite,
    which demands byte-identical claims from every backend.
    """

    def __init__(self, names: Iterable[str] = ENGINE_NAMES,
                 processes: int = 2, task_timeout: float | None = 60.0,
                 backend: str = "python"):
        self.names = tuple(names)
        unknown = [n for n in self.names if n not in ENGINE_NAMES]
        if unknown:
            raise ValueError(
                f"unknown engines {unknown}; known: {list(ENGINE_NAMES)}"
            )
        self.processes = processes
        self.task_timeout = task_timeout
        self.backend = resolve_backend(backend).name
        self._parallel = None

    def run(self, name: str, p: IntPoly, mu: int) -> list[int]:
        """One engine's claimed scaled roots for ``(p, mu)``."""
        if name in ("hybrid", "bisection", "newton"):
            return RealRootFinder(
                mu_bits=mu, strategy=name, backend=self.backend
            ).find_roots(p).scaled
        if name == "sturm":
            return SturmBisectFinder(
                mu=mu, counter=null_counter_for(self.backend)
            ).find_roots_scaled(p)
        if name == "parallel":
            from repro.sched.executor import ParallelRootFinder

            if self._parallel is None:
                self._parallel = ParallelRootFinder(
                    mu=mu, processes=self.processes,
                    task_timeout=self.task_timeout, backend=self.backend,
                )
            else:
                self._parallel.mu = mu  # retarget; the pool is mu-agnostic
            return self._parallel.find_roots_scaled(p)
        raise ValueError(f"unknown engine {name!r}")

    def close(self) -> None:
        """Shut the shared pool down (idempotent)."""
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    def __enter__(self) -> "EngineSet":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False


@dataclass(frozen=True)
class FuzzFinding:
    """One verified failure: which engine broke which law on which case.

    ``kind`` is one of ``"certification"`` (an engine's claim failed
    the exact Sturm certificate), ``"disagreement"`` (bit-exact
    mismatch against the certified reference), ``"refine"`` (a
    refinement round-trip broke), or ``"error"`` (an engine raised).
    ``engine`` names the guilty party as attributed by the
    certificate.
    """

    case: FuzzCase
    kind: str
    engine: str
    detail: str
    expected: tuple[int, ...] | None = None
    actual: tuple[int, ...] | None = None

    def summary(self) -> str:
        return f"[{self.kind}] {self.engine} on {self.case.label}: {self.detail}"

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "case": self.case.to_json(),
            "kind": self.kind,
            "engine": self.engine,
            "detail": self.detail,
        }
        if self.expected is not None:
            out["expected"] = list(self.expected)
        if self.actual is not None:
            out["actual"] = list(self.actual)
        return out


def _refine_shift(case: FuzzCase) -> int:
    """Deterministic per-case precision jump for the refine round-trip."""
    return 8 + 4 * (case.index % 9)


def check_case(
    case: FuzzCase,
    engines: EngineSet,
    *,
    refine: bool = True,
) -> list[FuzzFinding]:
    """Run one case through every engine pair and the refine round-trip.

    Returns the (possibly empty) list of verified findings.  The
    ``hybrid`` sequential run is the reference; its claim is proved by
    :func:`certify_roots` *before* any comparison, so a later mismatch
    indicts the other engine — and the other engine's claim is itself
    run through the certificate to confirm the attribution.
    """
    p, mu = case.poly, case.mu
    findings: list[FuzzFinding] = []

    try:
        ref = RealRootFinder(
            mu_bits=mu, backend=engines.backend
        ).find_roots(p)
    except Exception as exc:  # noqa: BLE001 — any crash is a finding
        return [FuzzFinding(case, "error", "hybrid",
                            f"reference run raised {exc!r}")]
    try:
        certify_roots(p, ref.scaled, ref.multiplicities, mu)
    except CertificationError as exc:
        return [FuzzFinding(case, "certification", "hybrid",
                            f"reference claim refuted: {exc}",
                            actual=tuple(ref.scaled))]

    for name in engines.names:
        if name == "hybrid":
            continue  # the reference itself
        try:
            got = engines.run(name, p, mu)
        except Exception as exc:  # noqa: BLE001
            findings.append(FuzzFinding(case, "error", name,
                                        f"engine raised {exc!r}"))
            continue
        if got == ref.scaled:
            continue
        # The reference is certified; certify the dissenting claim to
        # confirm the attribution before reporting.
        mults = (list(ref.multiplicities) if len(got) == len(ref.scaled)
                 else [1] * len(got))
        try:
            certify_roots(p, got, mults, mu)
            verdict = ("both claims certify — multiplicity assignment "
                       "ambiguous (reference wins)")
        except CertificationError as exc:
            verdict = f"claim refuted exactly: {exc}"
        findings.append(FuzzFinding(
            case, "disagreement", name, verdict,
            expected=tuple(ref.scaled), actual=tuple(got),
        ))

    if refine and ref.scaled:
        shift = _refine_shift(case)
        mu2 = mu + shift
        try:
            fine = refine_result(ref, p, mu2)
        except Exception as exc:  # noqa: BLE001
            findings.append(FuzzFinding(
                case, "refine", "refine_result",
                f"refining mu {mu} -> {mu2} raised {exc!r}"))
            return findings
        direct = RealRootFinder(
            mu_bits=mu2, backend=engines.backend
        ).find_roots(p)
        if fine.scaled != direct.scaled:
            findings.append(FuzzFinding(
                case, "refine", "refine_result",
                f"refined mu {mu} -> {mu2} disagrees with a direct run",
                expected=tuple(direct.scaled), actual=tuple(fine.scaled)))
        else:
            back = [ceil_div(s, 1 << shift) for s in fine.scaled]
            if back != ref.scaled:
                findings.append(FuzzFinding(
                    case, "refine", "refine_result",
                    f"grid consistency broken: coarsening the mu={mu2} "
                    f"answer does not reproduce the mu={mu} answer",
                    expected=tuple(ref.scaled), actual=tuple(back)))
            try:
                certify_roots(p, fine.scaled, fine.multiplicities, mu2)
            except CertificationError as exc:
                findings.append(FuzzFinding(
                    case, "refine", "refine_result",
                    f"refined claim refuted exactly: {exc}",
                    actual=tuple(fine.scaled)))
    return findings


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` campaign."""

    seed: int
    budget: int
    engines: tuple[str, ...]
    cases_run: int = 0
    per_family: dict[str, int] = field(default_factory=dict)
    findings: list[FuzzFinding] = field(default_factory=list)
    corpus_paths: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        fams = ", ".join(f"{k}:{v}" for k, v in sorted(self.per_family.items()))
        head = (f"fuzz seed={self.seed}: {self.cases_run}/{self.budget} cases "
                f"({fams}) on {'/'.join(self.engines)} in "
                f"{self.elapsed_seconds:.1f}s — "
                f"{len(self.findings)} finding(s)")
        lines = [head] + ["  " + f.summary() for f in self.findings]
        lines += [f"  shrunk repro written: {p}" for p in self.corpus_paths]
        return "\n".join(lines)


def run_fuzz(
    seed: int,
    budget: int,
    *,
    engine_names: Iterable[str] | None = None,
    families: list[str] | None = None,
    processes: int = 2,
    refine: bool = True,
    shrink: bool = True,
    corpus_dir: str | None = None,
    log_path: str | None = None,
    stop_after: int | None = 1,
    backend: str = "python",
) -> FuzzReport:
    """Run a seeded differential-fuzz campaign.

    Deterministic from ``seed``/``budget``/``families``.  Findings are
    minimized with :func:`repro.verify.shrink.shrink_case` (when
    ``shrink``) and written as corpus files under ``corpus_dir`` (when
    given).  ``log_path`` streams a JSONL findings log through
    :class:`repro.obs.events.EventLog`.  ``stop_after`` bounds how many
    *failing cases* are fully processed before the campaign stops
    (``None`` = never stop early); agreement never stops a run.
    ``backend`` runs every engine on that arithmetic backend
    (docs/BACKENDS.md); claims must stay byte-identical across
    backends, which the backend-parity suite asserts.
    """
    names = tuple(engine_names) if engine_names else ENGINE_NAMES
    report = FuzzReport(seed=seed, budget=budget, engines=names)
    log = None
    if log_path is not None:
        from repro.obs.events import EventLog

        log = EventLog(log_path)
        log.run_header("fuzz", seed=seed, budget=budget,
                       engines=list(names),
                       families=families or "all")
    t0 = time.perf_counter()
    failing_cases = 0
    try:
        with EngineSet(names, processes=processes,
                       backend=backend) as engines:
            for case in generate_cases(seed, budget, families):
                findings = check_case(case, engines, refine=refine)
                report.cases_run += 1
                report.per_family[case.family] = (
                    report.per_family.get(case.family, 0) + 1
                )
                if log is not None:
                    log.write({"ev": "fuzz_case", "case": case.to_json(),
                               "ok": not findings})
                if not findings:
                    continue
                failing_cases += 1
                for finding in findings:
                    shrunk_finding = finding
                    if shrink:
                        shrunk_finding = _shrink_finding(finding, engines,
                                                         refine=refine)
                    report.findings.append(shrunk_finding)
                    if log is not None:
                        log.write({"ev": "fuzz_finding",
                                   **shrunk_finding.to_json()})
                    if corpus_dir is not None:
                        from repro.verify.shrink import write_corpus_case

                        path = write_corpus_case(corpus_dir, shrunk_finding)
                        report.corpus_paths.append(path)
                if stop_after is not None and failing_cases >= stop_after:
                    break
    finally:
        report.elapsed_seconds = time.perf_counter() - t0
        if log is not None:
            log.write({"ev": "run_end", "cases": report.cases_run,
                       "findings": len(report.findings),
                       "elapsed_seconds": report.elapsed_seconds})
            log.close()
    return report


def _shrink_finding(finding: FuzzFinding, engines: EngineSet,
                    *, refine: bool) -> FuzzFinding:
    """Minimize a finding's case; keep the smallest same-kind failure."""
    from repro.verify.shrink import shrink_case

    def still_fails(candidate: FuzzCase) -> FuzzFinding | None:
        for f in check_case(candidate, engines, refine=refine):
            if f.kind == finding.kind and f.engine == finding.engine:
                return f
        return None

    small = shrink_case(finding.case, lambda c: still_fails(c) is not None)
    if small == finding.case:
        return finding
    return still_fails(small) or finding
