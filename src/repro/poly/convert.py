"""Coefficient conversions into exact integer polynomials.

Adopters rarely hold integer coefficients; these helpers convert the
common representations exactly:

* rationals (``Fraction`` or ``(num, den)`` pairs) — cleared by the LCM
  of denominators;
* floats — every IEEE double is a dyadic rational, so the conversion is
  exact (no rounding is introduced beyond what the floats already had);
* numpy arrays — via the float path.

Scaling a polynomial by a positive constant does not move its roots,
so all downstream results are unaffected.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, Sequence

from repro.poly.dense import IntPoly

__all__ = ["from_fractions", "from_floats", "from_any"]


def from_fractions(coeffs: Iterable["Fraction | int | tuple[int, int]"]) -> IntPoly:
    """Exact integer polynomial from rational coefficients (low to high).

    The result is the input scaled by the positive LCM of denominators.
    """
    fracs: list[Fraction] = []
    for c in coeffs:
        if isinstance(c, tuple):
            fracs.append(Fraction(c[0], c[1]))
        else:
            fracs.append(Fraction(c))
    if not fracs:
        return IntPoly.zero()
    lcm = 1
    for f in fracs:
        lcm = lcm * f.denominator // gcd(lcm, f.denominator)
    return IntPoly([int(f * lcm) for f in fracs])


def from_floats(coeffs: Sequence[float]) -> IntPoly:
    """Exact integer polynomial from float coefficients (low to high).

    IEEE doubles are dyadic rationals, so ``Fraction(float)`` is exact;
    no information is lost or invented.  Raises on NaN/inf.
    """
    fracs = []
    for c in coeffs:
        c = float(c)
        if c != c or c in (float("inf"), float("-inf")):
            raise ValueError(f"non-finite coefficient {c!r}")
        fracs.append(Fraction(c))
    return from_fractions(fracs)


def from_any(coeffs: Iterable) -> IntPoly:
    """Best-effort exact conversion: ints pass through, Fractions and
    floats via their exact paths; mixing is fine."""
    fracs = []
    for c in coeffs:
        if isinstance(c, bool):
            fracs.append(Fraction(int(c)))
        elif isinstance(c, int):
            fracs.append(Fraction(c))
        elif isinstance(c, float):
            if c != c or c in (float("inf"), float("-inf")):
                raise ValueError(f"non-finite coefficient {c!r}")
            fracs.append(Fraction(c))
        elif isinstance(c, Fraction):
            fracs.append(c)
        elif isinstance(c, tuple) and len(c) == 2:
            fracs.append(Fraction(c[0], c[1]))
        else:
            # numpy scalars and other numerics: try exact float route
            fracs.append(Fraction(float(c)))
    return from_fractions(fracs)
