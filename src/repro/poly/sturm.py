"""Sturm chains and exact real-root counting.

The reproduction uses Sturm chains in two roles:

* as the *certification oracle* for every computed approximation — each
  reported ``mu``-approximation is certified by exact integer sign
  evaluations, independent of the algorithm under test;
* as the classical sequential baseline isolator
  (:mod:`repro.baselines.sturm_bisect`).

The chain here is the generalized (pseudo-remainder) Sturm sequence: it
works for arbitrary integer polynomials, including non-square-free ones,
for which it counts *distinct* real roots.
"""

from __future__ import annotations

from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.poly.dense import IntPoly
from repro.poly.eval import scaled_sign

__all__ = [
    "sturm_chain",
    "sign_variations",
    "variations_at_scaled",
    "variations_at_neg_inf",
    "variations_at_pos_inf",
    "count_real_roots",
    "count_roots_in_open",
    "count_roots_below",
]


def sturm_chain(
    p: IntPoly, counter: CostCounter = NULL_COUNTER
) -> list[IntPoly]:
    """Build the generalized Sturm chain of ``p``.

    Each successor is a *positive* rational multiple of the negated
    remainder ``-rem(S_{i-1}, S_i)``, computed with integer
    pseudo-division and content removal to contain coefficient growth.
    Positive scaling preserves signs everywhere, which is all Sturm's
    theorem needs.
    """
    if p.is_zero():
        raise ValueError("Sturm chain of the zero polynomial is undefined")
    chain = [p]
    if p.degree == 0:
        return chain
    cur = p.derivative(counter)
    if cur.is_zero():
        return chain
    chain.append(cur)
    prev = p
    while chain[-1].degree > 0:
        prev, cur = cur, None
        a, b = chain[-2], chain[-1]
        _q, r, k = a.pseudo_divmod(b, counter)
        if r.is_zero():
            break
        # prem: lc(b)**k * a = Q*b + r, so rem(a, b) = r / lc(b)**k.
        # We need a positive multiple of -rem:
        lc_pow_sign = 1 if (b.leading_coefficient > 0 or k % 2 == 0) else -1
        nxt = -r if lc_pow_sign > 0 else r
        _c, nxt = nxt.primitive_part()
        chain.append(nxt)
        cur = nxt
    return chain


def sign_variations(signs: list[int]) -> int:
    """Number of sign changes in a sequence, zeros ignored."""
    var = 0
    last = 0
    for s in signs:
        if s == 0:
            continue
        if last != 0 and s != last:
            var += 1
        last = s
    return var


def variations_at_scaled(
    chain: list[IntPoly], y: int, w: int, counter: CostCounter = NULL_COUNTER
) -> int:
    """Sign variations of the chain at the rational point ``y / 2**w``."""
    return sign_variations(
        [scaled_sign(q, y, w, counter) for q in chain]
    )


def variations_at_neg_inf(chain: list[IntPoly]) -> int:
    """Sign variations of the chain as ``x -> -inf`` (leading terms)."""
    return sign_variations([q.sign_at_neg_inf() for q in chain])


def variations_at_pos_inf(chain: list[IntPoly]) -> int:
    """Sign variations of the chain as ``x -> +inf`` (leading signs)."""
    signs = []
    for q in chain:
        if q.is_zero():
            signs.append(0)
        else:
            signs.append(1 if q.leading_coefficient > 0 else -1)
    return sign_variations(signs)


def count_real_roots(
    p: IntPoly, counter: CostCounter = NULL_COUNTER
) -> int:
    """Number of *distinct* real roots of ``p``."""
    chain = sturm_chain(p, counter)
    return variations_at_neg_inf(chain) - variations_at_pos_inf(chain)


def count_roots_in_open(
    chain: list[IntPoly], a: int, b: int, w: int,
    counter: CostCounter = NULL_COUNTER,
) -> int:
    """Distinct real roots in the open interval ``(a/2**w, b/2**w)``.

    Requires that neither endpoint is a root of ``chain[0]`` (raises
    otherwise — callers perturb by one grid step instead of guessing).
    """
    p = chain[0]
    if scaled_sign(p, a, w, counter) == 0 or scaled_sign(p, b, w, counter) == 0:
        raise ValueError("count_roots_in_open endpoints must not be roots")
    if a >= b:
        return 0
    return variations_at_scaled(chain, a, w, counter) - variations_at_scaled(
        chain, b, w, counter
    )


def count_roots_below(
    chain: list[IntPoly], y: int, w: int, counter: CostCounter = NULL_COUNTER
) -> int:
    """Distinct real roots in ``(-inf, y/2**w)``; the endpoint must not be a root."""
    p = chain[0]
    if scaled_sign(p, y, w, counter) == 0:
        raise ValueError("count_roots_below endpoint must not be a root")
    return variations_at_neg_inf(chain) - variations_at_scaled(
        chain, y, w, counter
    )
