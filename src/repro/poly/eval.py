"""Scaled-integer polynomial evaluation (paper Section 4.3).

The implementation is constrained to integer arithmetic, so a rational
evaluation point ``x = Y / 2**w`` (``Y`` integer, ``w`` bits of scale) is
handled by evaluating the homogenized polynomial

    p_w(Y) = sum_j  p_j * Y**j * 2**((d-j)*w)  =  2**(d*w) * p(Y / 2**w)

by Horner's rule.  ``p_w(Y)`` has the same sign as ``p(x)`` and is exact.
This is the single most executed primitive of the whole algorithm: every
PREINTERVAL probe, every sieve/bisection step and every Newton iteration
is one or two calls to :func:`scaled_eval`.
"""

from __future__ import annotations

from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.poly.dense import IntPoly

__all__ = [
    "scaled_eval",
    "scaled_sign",
    "horner_partial_sizes",
    "ScaledEvaluator",
]


def scaled_eval(
    p: IntPoly, y: int, w: int, counter: CostCounter = NULL_COUNTER
) -> int:
    """Return ``2**(deg(p)*w) * p(y / 2**w)`` exactly.

    ``w`` must be >= 0.  Each Horner step performs one counted
    multiplication (partial * y) and one counted shift-add, matching the
    operation accounting of Eq. (37) in the paper.
    """
    if w < 0:
        raise ValueError("scale w must be >= 0")
    if p.is_zero():
        return 0
    d = p.degree
    coeffs = p.coeffs
    acc = coeffs[d]
    mul = counter.mul
    for j in range(d - 1, -1, -1):
        acc = mul(acc, y) + counter.shift_left(coeffs[j], (d - j) * w)
    return acc


def scaled_sign(
    p: IntPoly, y: int, w: int, counter: CostCounter = NULL_COUNTER
) -> int:
    """Exact sign of ``p(y / 2**w)`` using only integer arithmetic."""
    v = scaled_eval(p, y, w, counter)
    return (v > 0) - (v < 0)


class ScaledEvaluator:
    """Repeated scaled evaluation with one-time coefficient scaling.

    The paper scales each polynomial once — "the polynomial
    coefficients had to be scaled appropriately before evaluation" —
    and then evaluates the integer polynomial ``p_w(Y) = sum_j (p_j <<
    (d-j) w) Y^j`` by plain Horner.  Since every interval solve
    evaluates the *same* polynomial at the *same* scale dozens of
    times, hoisting the shifts out of the loop is both faithful and
    fast.  Multiplication counts are identical to
    :func:`scaled_eval`; the shift/add bookkeeping moves into
    construction (a cost the paper's analysis explicitly ignores:
    "we ignore the costs incurred in scaling the polynomials").
    """

    __slots__ = ("degree", "shifted", "w")

    def __init__(self, p: IntPoly, w: int):
        if w < 0:
            raise ValueError("scale w must be >= 0")
        d = p.degree
        self.degree = d
        self.w = w
        self.shifted = tuple(
            c << ((d - j) * w) for j, c in enumerate(p.coeffs)
        )

    def eval(self, y: int, counter: CostCounter = NULL_COUNTER) -> int:
        """``2**(deg*w) * p(y / 2**w)`` exactly (== :func:`scaled_eval`)."""
        cs = self.shifted
        if not cs:
            return 0
        acc = cs[-1]
        mul = counter.mul
        for j in range(len(cs) - 2, -1, -1):
            acc = mul(acc, y) + cs[j]
        return acc

    def eval_many(
        self, ys: "list[int] | tuple[int, ...]",
        counter: CostCounter = NULL_COUNTER,
    ) -> list[int]:
        """Batched Horner: evaluate at every point in ``ys`` in one call.

        Reuses the shifted-coefficient payload across the whole vector and
        hoists the per-point loop machinery, which is where the sieve and
        PREINTERVAL phases spend their time.  Op order per point is
        identical to :meth:`eval`, so charged counts are bit-exact with a
        loop of single evaluations.
        """
        cs = self.shifted
        if not cs:
            return [0] * len(ys)
        top = cs[-1]
        mul = counter.mul
        rng = range(len(cs) - 2, -1, -1)
        out = []
        for y in ys:
            acc = top
            for j in rng:
                acc = mul(acc, y) + cs[j]
            out.append(acc)
        return out

    def sign(self, y: int, counter: CostCounter = NULL_COUNTER) -> int:
        v = self.eval(y, counter)
        return (v > 0) - (v < 0)


def horner_partial_sizes(p: IntPoly, y: int, w: int) -> list[int]:
    """Bit sizes of the Horner partial values ``E_i`` (paper Eq. after (37)).

    Used by the analysis tests to check the paper's size model
    ``||E_i|| <= m + i*X + log(i+1)`` where ``X = ||y||``.
    """
    if p.is_zero():
        return [0]
    d = p.degree
    acc = p.coeffs[d]
    sizes = [abs(acc).bit_length()]
    for j in range(d - 1, -1, -1):
        acc = acc * y + (p.coeffs[j] << ((d - j) * w))
        sizes.append(abs(acc).bit_length())
    return sizes
