"""2x2 matrices of integer polynomials.

The tree phase of the algorithm (paper Sections 2.1 and 3.2) manipulates
2x2 matrices ``T_{i,j}`` whose entries are the interleaving polynomials:

    T_{i,j} = [[-P_{i+1,j-1},  P_{i,j-1}],
               [-P_{i+1,j},    P_{i,j}  ]]        (paper Eq. 54)

Products of these matrices are where most of the tree phase's bit cost is
spent; :meth:`PolyMatrix2x2.mul` therefore charges the cost counter and
can optionally run as eight separately attributed entry-products, which
is exactly how the parallel implementation splits COMPUTEPOLY into tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.poly.dense import IntPoly

__all__ = ["PolyMatrix2x2"]


@dataclass(frozen=True)
class PolyMatrix2x2:
    """An immutable 2x2 matrix of :class:`IntPoly` entries.

    Entries are addressed (row, col) with 1-based helpers matching the
    paper's ``T(2,2)`` notation.
    """

    a11: IntPoly
    a12: IntPoly
    a21: IntPoly
    a22: IntPoly

    @classmethod
    def identity(cls) -> "PolyMatrix2x2":
        one = IntPoly.one()
        zero = IntPoly.zero()
        return cls(one, zero, zero, one)

    @classmethod
    def scalar(cls, c: int) -> "PolyMatrix2x2":
        p = IntPoly.constant(c)
        zero = IntPoly.zero()
        return cls(p, zero, zero, p)

    def entry(self, row: int, col: int) -> IntPoly:
        """1-based entry access: ``entry(2, 2)`` is the paper's ``T(2,2)``."""
        return {
            (1, 1): self.a11,
            (1, 2): self.a12,
            (2, 1): self.a21,
            (2, 2): self.a22,
        }[(row, col)]

    def mul(
        self, other: "PolyMatrix2x2", counter: CostCounter = NULL_COUNTER
    ) -> "PolyMatrix2x2":
        """Matrix product ``self @ other`` with cost-charged entry products."""
        s, o = self, other
        return PolyMatrix2x2(
            s.a11.mul(o.a11, counter) + s.a12.mul(o.a21, counter),
            s.a11.mul(o.a12, counter) + s.a12.mul(o.a22, counter),
            s.a21.mul(o.a11, counter) + s.a22.mul(o.a21, counter),
            s.a21.mul(o.a12, counter) + s.a22.mul(o.a22, counter),
        )

    def __matmul__(self, other: "PolyMatrix2x2") -> "PolyMatrix2x2":
        return self.mul(other)

    def entry_product(
        self, other: "PolyMatrix2x2", row: int, col: int,
        counter: CostCounter = NULL_COUNTER,
    ) -> IntPoly:
        """One entry of ``self @ other`` — the grain of a COMPUTEPOLY task.

        The parallel implementation executes each of the four entries of
        each of the two matrix products at a node as a distinct task
        (paper Section 3.2); this method is that task's body.
        """
        left = (self.a11, self.a12) if row == 1 else (self.a21, self.a22)
        right = (other.a11, other.a21) if col == 1 else (other.a12, other.a22)
        return left[0].mul(right[0], counter) + left[1].mul(right[1], counter)

    def scale(self, c: int, counter: CostCounter = NULL_COUNTER) -> "PolyMatrix2x2":
        return PolyMatrix2x2(
            self.a11.scale(c, counter),
            self.a12.scale(c, counter),
            self.a21.scale(c, counter),
            self.a22.scale(c, counter),
        )

    def exact_div_scalar(
        self, c: int, counter: CostCounter = NULL_COUNTER
    ) -> "PolyMatrix2x2":
        """Entrywise exact division; raises on any inexact coefficient."""
        return PolyMatrix2x2(
            self.a11.exact_div_scalar(c, counter),
            self.a12.exact_div_scalar(c, counter),
            self.a21.exact_div_scalar(c, counter),
            self.a22.exact_div_scalar(c, counter),
        )

    def determinant(self, counter: CostCounter = NULL_COUNTER) -> IntPoly:
        return self.a11.mul(self.a22, counter) - self.a12.mul(self.a21, counter)

    def max_coefficient_bits(self) -> int:
        """The paper's ``||T||``: max coefficient size over all entries."""
        return max(
            self.a11.max_coefficient_bits(),
            self.a12.max_coefficient_bits(),
            self.a21.max_coefficient_bits(),
            self.a22.max_coefficient_bits(),
        )

    def max_degree(self) -> int:
        """The paper's ``d(T)``: max entry degree."""
        return max(
            self.a11.degree, self.a12.degree, self.a21.degree, self.a22.degree
        )
