"""Exact integer polynomial arithmetic substrate."""

from repro.poly.dense import IntPoly
from repro.poly.matrix import PolyMatrix2x2
from repro.poly.eval import scaled_eval, scaled_sign
from repro.poly.gcd import (
    poly_gcd,
    square_free_part,
    square_free_decomposition,
    is_square_free,
)
from repro.poly.sturm import (
    sturm_chain,
    count_real_roots,
    count_roots_in_open,
    count_roots_below,
)
from repro.poly.roots_bounds import (
    cauchy_root_bound_bits,
    fujiwara_root_bound_bits,
    root_bound_bits,
    root_bracket_scaled,
)
from repro.poly.convert import from_fractions, from_floats, from_any
from repro.poly.eval import ScaledEvaluator

__all__ = [
    "IntPoly",
    "PolyMatrix2x2",
    "scaled_eval",
    "scaled_sign",
    "poly_gcd",
    "square_free_part",
    "square_free_decomposition",
    "is_square_free",
    "sturm_chain",
    "count_real_roots",
    "count_roots_in_open",
    "count_roots_below",
    "cauchy_root_bound_bits",
    "fujiwara_root_bound_bits",
    "root_bound_bits",
    "root_bracket_scaled",
    "from_fractions",
    "from_floats",
    "from_any",
    "ScaledEvaluator",
]
