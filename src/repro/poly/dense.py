"""Exact dense integer polynomials.

This module is the arithmetic substrate for the whole reproduction.  The
paper performs every computation over the integers (rationals are avoided
by scaling with ``2**mu``), so :class:`IntPoly` stores coefficients as
Python ``int`` objects, which are exact and arbitrary precision.

Every potentially expensive operation takes an optional
:class:`~repro.costmodel.counter.CostCounter`-compatible ``counter`` so
the benchmark harness can attribute multiplication counts and quadratic
bit costs to algorithm phases exactly as the paper's tracing did
(Section 5.1, Figures 2-7).

Coefficient order is low-to-high: ``coeffs[j]`` multiplies ``x**j``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.costmodel.counter import NULL_COUNTER, CostCounter

__all__ = ["IntPoly"]


def _trim(coeffs: list[int]) -> list[int]:
    """Drop trailing zero coefficients (highest degrees) in place."""
    while coeffs and coeffs[-1] == 0:
        coeffs.pop()
    return coeffs


class IntPoly:
    """A dense univariate polynomial with exact integer coefficients.

    The zero polynomial has an empty coefficient list and, by the usual
    convention for this codebase, ``degree == -1``.

    Instances are immutable in spirit: no public method mutates
    ``coeffs`` after construction, so polynomials may be shared freely
    between tasks in the parallel scheduler.
    """

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Iterable[int] = ()):  # low-to-high order
        cs = [int(c) for c in coeffs]
        _trim(cs)
        self.coeffs: tuple[int, ...] = tuple(cs)

    # -- constructors -------------------------------------------------
    @classmethod
    def zero(cls) -> "IntPoly":
        return cls(())

    @classmethod
    def one(cls) -> "IntPoly":
        return cls((1,))

    @classmethod
    def constant(cls, c: int) -> "IntPoly":
        return cls((c,))

    @classmethod
    def x(cls) -> "IntPoly":
        return cls((0, 1))

    @classmethod
    def monomial(cls, c: int, k: int) -> "IntPoly":
        """Return ``c * x**k``."""
        if k < 0:
            raise ValueError("monomial exponent must be >= 0")
        if c == 0:
            return cls.zero()
        return cls((0,) * k + (c,))

    @classmethod
    def from_roots(cls, roots: Sequence[int]) -> "IntPoly":
        """Monic polynomial ``prod (x - r)`` with the given integer roots."""
        p = cls.one()
        for r in roots:
            p = p * cls((-int(r), 1))
        return p

    # -- basic queries -------------------------------------------------
    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return not self.coeffs

    @property
    def leading_coefficient(self) -> int:
        if not self.coeffs:
            return 0
        return self.coeffs[-1]

    def coefficient(self, k: int) -> int:
        """Coefficient of ``x**k`` (0 for k beyond the degree)."""
        if 0 <= k < len(self.coeffs):
            return self.coeffs[k]
        return 0

    def max_coefficient_bits(self) -> int:
        """``max_j ||c_j||`` in bits — the paper's ``||p||`` measure."""
        if not self.coeffs:
            return 0
        return max(abs(c).bit_length() for c in self.coeffs)

    def height(self) -> int:
        """Max absolute coefficient (the classical polynomial height)."""
        if not self.coeffs:
            return 0
        return max(abs(c) for c in self.coeffs)

    # -- equality / hashing / repr --------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntPoly):
            return self.coeffs == other.coeffs
        if isinstance(other, int):
            return self.coeffs == ((other,) if other else ())
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.coeffs)

    def __repr__(self) -> str:
        if self.is_zero():
            return "IntPoly(0)"
        terms = []
        for j in range(self.degree, -1, -1):
            c = self.coeffs[j]
            if c == 0:
                continue
            if j == 0:
                terms.append(f"{c:+d}")
            elif j == 1:
                terms.append(f"{c:+d}*x")
            else:
                terms.append(f"{c:+d}*x^{j}")
        body = " ".join(terms)
        if body.startswith("+"):
            body = body[1:]
        return f"IntPoly({body})"

    def __bool__(self) -> bool:
        return bool(self.coeffs)

    # -- ring operations -------------------------------------------------
    def __neg__(self) -> "IntPoly":
        return IntPoly(tuple(-c for c in self.coeffs))

    def __add__(self, other: "IntPoly | int") -> "IntPoly":
        if isinstance(other, int):
            other = IntPoly.constant(other)
        if not isinstance(other, IntPoly):
            return NotImplemented
        a, b = self.coeffs, other.coeffs
        if len(a) < len(b):
            a, b = b, a
        out = list(a)
        for j, c in enumerate(b):
            out[j] += c
        return IntPoly(out)

    __radd__ = __add__

    def __sub__(self, other: "IntPoly | int") -> "IntPoly":
        if isinstance(other, int):
            other = IntPoly.constant(other)
        if not isinstance(other, IntPoly):
            return NotImplemented
        out = list(self.coeffs)
        bc = other.coeffs
        if len(out) < len(bc):
            out.extend([0] * (len(bc) - len(out)))
        for j, c in enumerate(bc):
            out[j] -= c
        return IntPoly(out)

    def __rsub__(self, other: "IntPoly | int") -> "IntPoly":
        if isinstance(other, int):
            return IntPoly.constant(other) - self
        return NotImplemented

    def __mul__(self, other: "IntPoly | int") -> "IntPoly":
        if isinstance(other, int):
            return self.scale(other)
        if not isinstance(other, IntPoly):
            return NotImplemented
        return self.mul(other)

    def __rmul__(self, other: "IntPoly | int") -> "IntPoly":
        if isinstance(other, int):
            return self.scale(other)
        return NotImplemented

    def scale(self, c: int, counter: CostCounter = NULL_COUNTER) -> "IntPoly":
        """Multiply every coefficient by the integer ``c``."""
        if c == 0 or self.is_zero():
            return IntPoly.zero()
        if c == 1:
            return self
        return IntPoly(tuple(counter.mul(a, c) for a in self.coeffs))

    def mul(self, other: "IntPoly", counter: CostCounter = NULL_COUNTER) -> "IntPoly":
        """Schoolbook polynomial product, cost-charged per coefficient.

        The schoolbook (quadratic) convolution matches the paper's model:
        the UNIX ``mp`` package used straightforward algorithms, and the
        analysis of Section 4.2 charges ``(da+1)*(db+1)`` scalar
        multiplications for a *dense* product.  The implementation is
        sparse-aware: terms where either operand coefficient is zero are
        skipped entirely (never charged), so the charged count is exactly
        ``nnz(a) * nnz(b)`` — the number of nonzero-coefficient pairs —
        which equals the dense bound when both operands are dense.  This
        contract is pinned by ``tests/costmodel/test_backend.py``.
        """
        a, b = self.coeffs, other.coeffs
        if not a or not b:
            return IntPoly.zero()
        out = [0] * (len(a) + len(b) - 1)
        mul = counter.mul
        for i, ai in enumerate(a):
            if ai == 0:
                continue
            for j, bj in enumerate(b):
                if bj == 0:
                    continue
                out[i + j] += mul(ai, bj)
        return IntPoly(out)

    def shift_up(self, k: int) -> "IntPoly":
        """Return ``x**k * self``."""
        if self.is_zero() or k == 0:
            return self
        return IntPoly((0,) * k + self.coeffs)

    # -- division --------------------------------------------------------
    def exact_div_scalar(self, c: int, counter: CostCounter = NULL_COUNTER) -> "IntPoly":
        """Divide every coefficient by ``c``; raise if any division is inexact.

        The paper's recurrence (Eq. 18) divides by ``c_{i-1}^2`` and Collins'
        theory guarantees exactness; checking it at runtime turns silent
        corruption into a loud error.
        """
        if c == 0:
            raise ZeroDivisionError("exact_div_scalar by zero")
        if c == 1:
            return self
        out = []
        for a in self.coeffs:
            q, r = counter.divmod(a, c)
            if r != 0:
                raise ArithmeticError(
                    f"inexact scalar division: {a} not divisible by {c}"
                )
            out.append(q)
        return IntPoly(out)

    def divmod(
        self, other: "IntPoly", counter: CostCounter = NULL_COUNTER
    ) -> tuple["IntPoly", "IntPoly"]:
        """Euclidean division over Q, valid only when the result is integral.

        Raises :class:`ArithmeticError` if a non-integer coefficient would
        arise.  Use :meth:`pseudo_divmod` for the general integer case.
        """
        if other.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        if self.degree < other.degree:
            return IntPoly.zero(), self
        rem = list(self.coeffs)
        dq = self.degree - other.degree
        quot = [0] * (dq + 1)
        lc = other.leading_coefficient
        bc = other.coeffs
        for k in range(dq, -1, -1):
            head = rem[k + other.degree]
            if head == 0:
                continue
            q, r = counter.divmod(head, lc)
            if r != 0:
                raise ArithmeticError("non-exact polynomial division")
            quot[k] = q
            for j, b in enumerate(bc):
                rem[k + j] -= counter.mul(q, b)
        return IntPoly(quot), IntPoly(rem)

    def pseudo_divmod(
        self, other: "IntPoly", counter: CostCounter = NULL_COUNTER
    ) -> tuple["IntPoly", "IntPoly", int]:
        """Pseudo-division: find Q, R with ``lc(other)**k * self = Q*other + R``.

        Returns ``(Q, R, k)`` where ``k = deg(self) - deg(other) + 1`` (or 0
        when no division step is needed).  All arithmetic stays integral.
        """
        if other.is_zero():
            raise ZeroDivisionError("polynomial pseudo-division by zero")
        if self.degree < other.degree:
            return IntPoly.zero(), self, 0
        d = other.degree
        lc = other.leading_coefficient
        k = self.degree - d + 1
        quot = IntPoly.zero()
        rem = self
        e = k
        while not rem.is_zero() and rem.degree >= d:
            j = rem.degree - d
            head = rem.leading_coefficient
            quot = quot.scale(lc, counter) + IntPoly.monomial(head, j)
            rem = rem.scale(lc, counter) - other.mul(
                IntPoly.monomial(head, j), counter
            )
            e -= 1
        # Normalize so that exactly lc**k multiplies the dividend.
        if e > 0:
            q = lc**e
            quot = quot.scale(q, counter)
            rem = rem.scale(q, counter)
        return quot, rem, k

    # -- calculus / transforms -------------------------------------------
    def derivative(self, counter: CostCounter = NULL_COUNTER) -> "IntPoly":
        if self.degree < 1:
            return IntPoly.zero()
        return IntPoly(
            tuple(counter.mul(j, self.coeffs[j]) for j in range(1, len(self.coeffs)))
        )

    def compose_linear(self, a: int, b: int) -> "IntPoly":
        """Return ``p(a*x + b)`` (exact, used by tests and workloads)."""
        res = IntPoly.zero()
        lin = IntPoly((b, a))
        for c in reversed(self.coeffs):
            res = res * lin + c
        return res

    def reversed_coeffs(self) -> "IntPoly":
        """Return ``x**deg * p(1/x)`` — the reciprocal polynomial."""
        return IntPoly(tuple(reversed(self.coeffs)))

    def primitive_part(self) -> tuple[int, "IntPoly"]:
        """Return ``(content, primitive)`` with ``content >= 0`` except that
        the sign convention keeps the primitive part's leading coefficient
        sign equal to the original's."""
        if self.is_zero():
            return 0, IntPoly.zero()
        from math import gcd

        g = 0
        for c in self.coeffs:
            g = gcd(g, abs(c))
            if g == 1:
                break
        if g in (0, 1):
            return 1, self
        return g, IntPoly(tuple(c // g for c in self.coeffs))

    # -- evaluation --------------------------------------------------------
    def __call__(self, x: int) -> int:
        return self.eval_int(x)

    def eval_int(self, x: int, counter: CostCounter = NULL_COUNTER) -> int:
        """Horner evaluation at an integer point.

        Charges exactly ``degree`` multiplications: the recurrence seeds
        the accumulator with the leading coefficient instead of charging a
        spurious ``mul(0, x)``, matching the paper's model and
        :func:`repro.analysis.bounds.eval_bit_cost_bound`.
        """
        cs = self.coeffs
        if not cs:
            return 0
        acc = cs[-1]
        mul = counter.mul
        for j in range(len(cs) - 2, -1, -1):
            acc = mul(acc, x) + cs[j]
        return acc

    def eval_float(self, x: float) -> float:
        """Approximate evaluation in floats, saturating out-of-range
        coefficients to ``±inf`` instead of raising ``OverflowError``
        (Wilkinson-scale inputs exceed float range around degree 171)."""
        acc = 0.0
        for c in reversed(self.coeffs):
            try:
                fc = float(c)
            except OverflowError:
                fc = math.inf if c > 0 else -math.inf
            acc = acc * x + fc
        return acc

    def sign_at_rational(
        self, num: int, den: int, counter: CostCounter = NULL_COUNTER
    ) -> int:
        """Exact sign of ``p(num/den)`` for ``den > 0``.

        Evaluates the homogenized form ``sum c_j num^j den^(d-j)`` by
        Horner, so only integers appear.
        """
        if den <= 0:
            raise ValueError("den must be positive")
        if self.is_zero():
            return 0
        acc = 0
        mul = counter.mul
        for j in range(self.degree, -1, -1):
            acc = mul(acc, num) + mul(self.coeffs[j], den ** (self.degree - j))
        return (acc > 0) - (acc < 0)

    def sign_at_neg_inf(self) -> int:
        """Sign of ``p(x)`` as ``x -> -inf``."""
        if self.is_zero():
            return 0
        lc = 1 if self.leading_coefficient > 0 else -1
        return lc if self.degree % 2 == 0 else -lc
