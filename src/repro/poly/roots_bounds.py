"""Root magnitude bounds.

The paper (Section 2.2, citing Householder 1970) brackets all roots of an
``m``-bit-coefficient polynomial inside ``[-2**m, 2**m]`` (it states the
interval as ``[2**-m, 2**m]``, an evident typo for the symmetric
interval).  We implement the Cauchy bound, which is at most ``m+1`` bits
and usually much tighter, and expose the paper's ``R`` parameter
(``X = R + mu`` drives the interval-phase complexity, Eq. 40).
"""

from __future__ import annotations

from repro.poly.dense import IntPoly

__all__ = [
    "cauchy_root_bound_bits",
    "fujiwara_root_bound_bits",
    "root_bound_bits",
    "root_bracket_scaled",
]


def cauchy_root_bound_bits(p: IntPoly) -> int:
    """Smallest ``R`` such that every (real or complex) root has ``|x| < 2**R``.

    Uses the Cauchy bound ``|x| <= 1 + max_j |c_j| / |c_d|``.  Returns
    ``R >= 1`` for constant-free safety.
    """
    if p.is_zero():
        raise ValueError("zero polynomial has no root bound")
    if p.degree == 0:
        return 1
    lead = abs(p.leading_coefficient)
    mx = max(abs(c) for c in p.coeffs[:-1]) if p.degree >= 1 else 0
    # 1 + mx/lead  <  2**R   <=>   lead + mx < lead * 2**R
    bound_num = lead + mx  # numerator of the Cauchy bound times lead
    r = 1
    while (lead << r) < bound_num:
        r += 1
    return max(r, 1)


def fujiwara_root_bound_bits(p: IntPoly) -> int:
    """Smallest ``R`` with ``2 * max_k |a_{n-k}/a_n|^(1/k) < 2**R``.

    Fujiwara's bound is dramatically tighter than Cauchy's for
    polynomials whose low coefficients are huge but whose roots are
    moderate — exactly the characteristic-polynomial workload (Cauchy
    gives ``R ~ m`` bits, Fujiwara ``R ~ m/n + log n``).  Tight
    sentinels make the outermost interval problems as cheap as interior
    ones.
    """
    if p.is_zero():
        raise ValueError("zero polynomial has no root bound")
    n = p.degree
    if n == 0:
        return 1
    lead = abs(p.leading_coefficient)
    r = 1
    for k in range(1, n + 1):
        a = abs(p.coefficient(n - k))
        if a == 0:
            continue
        # need (a/lead)^(1/k) <= 2**(r_k), i.e. a <= lead << (k * r_k)
        rk = 0
        while a > (lead << (k * rk)):
            rk += 1
        r = max(r, rk + 1)  # +1 for the factor 2 in Fujiwara's bound
    return max(r + 1, 1)  # strictness margin


def root_bound_bits(p: IntPoly) -> int:
    """The tighter of the Cauchy and Fujiwara bounds (used everywhere)."""
    return min(cauchy_root_bound_bits(p), fujiwara_root_bound_bits(p))


def root_bracket_scaled(p: IntPoly, w: int) -> tuple[int, int]:
    """Return integers ``(lo, hi)`` with every real root of ``p`` inside
    ``(lo/2**w, hi/2**w)``.

    These play the role of the paper's outer sentinels ``y_0`` and ``y_n``
    when solving the interval problems at the root of the recursion.
    """
    r = root_bound_bits(p)
    hi = 1 << (r + w)
    return -hi, hi
