"""Polynomial gcd and square-free machinery over the integers.

Repeated roots make the paper's remainder sequence terminate early at
``F_{n*} = gcd(F_0, F_1)`` (Section 2.3).  The production entry point
:class:`repro.core.rootfinder.RealRootFinder` therefore needs an exact
integer polynomial gcd (subresultant PRS, Collins 1967) and Yun's
square-free decomposition to recover multiplicities.
"""

from __future__ import annotations

from math import gcd as int_gcd

from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.poly.dense import IntPoly

__all__ = [
    "poly_gcd",
    "square_free_part",
    "square_free_decomposition",
    "is_square_free",
]


def _normalize_sign(p: IntPoly) -> IntPoly:
    if p.leading_coefficient < 0:
        return -p
    return p


def poly_gcd(
    a: IntPoly, b: IntPoly, counter: CostCounter = NULL_COUNTER
) -> IntPoly:
    """Primitive gcd of two integer polynomials, positive leading coeff.

    Uses the subresultant polynomial remainder sequence, which keeps
    intermediate coefficients polynomially bounded (Collins 1967) —
    the same theory underpinning the paper's remainder sequence bounds.
    """
    if a.is_zero():
        return _normalize_sign(b.primitive_part()[1]) if not b.is_zero() else IntPoly.zero()
    if b.is_zero():
        return _normalize_sign(a.primitive_part()[1])

    ca, pa = a.primitive_part()
    cb, pb = b.primitive_part()
    content = int_gcd(ca, cb)

    if pa.degree < pb.degree:
        pa, pb = pb, pa

    # Subresultant PRS state (Brown/Collins): g and h scale factors.
    g, h = 1, 1
    while True:
        delta = pa.degree - pb.degree
        _q, r, _k = pa.pseudo_divmod(pb, counter)
        if r.is_zero():
            break
        if r.degree == 0:
            pb = IntPoly.one()
            break
        divisor = g * h**delta
        pa, pb = pb, r.exact_div_scalar(divisor, counter) if divisor not in (1, -1) else (
            r if divisor == 1 else -r
        )
        g = pa.leading_coefficient
        if delta >= 1:
            # h = h**(1-delta) * g**delta, exact by subresultant theory
            num = g**delta
            if delta == 1:
                h = num
            else:
                den = h ** (delta - 1)
                h = counter.exact_div(num, den)
        # delta == 0 cannot occur for a proper remainder (deg r < deg pb)

    result = _normalize_sign(pb.primitive_part()[1])
    if result.degree == 0:
        return IntPoly.constant(content)
    return result.scale(content) if content != 1 else result


def square_free_part(
    p: IntPoly, counter: CostCounter = NULL_COUNTER
) -> IntPoly:
    """Return the square-free part ``p / gcd(p, p')`` (primitive, lc > 0)."""
    if p.is_zero():
        raise ValueError("square-free part of zero is undefined")
    if p.degree <= 1:
        return _normalize_sign(p.primitive_part()[1])
    g = poly_gcd(p, p.derivative(counter), counter)
    if g.degree == 0:
        return _normalize_sign(p.primitive_part()[1])
    q, r = p.divmod(g, counter)
    if not r.is_zero():
        raise ArithmeticError("gcd does not divide p — internal error")
    return _normalize_sign(q.primitive_part()[1])


def is_square_free(p: IntPoly, counter: CostCounter = NULL_COUNTER) -> bool:
    """True iff ``p`` has no repeated (complex) roots: ``gcd(p, p')`` constant."""
    if p.is_zero():
        return False
    if p.degree <= 1:
        return True
    return poly_gcd(p, p.derivative(counter), counter).degree == 0


def square_free_decomposition(
    p: IntPoly, counter: CostCounter = NULL_COUNTER
) -> list[tuple[IntPoly, int]]:
    """Yun's algorithm: ``p = content * prod f_i**i`` with square-free,
    pairwise-coprime ``f_i``.

    Returns the list of ``(f_i, i)`` with non-constant ``f_i`` only, in
    increasing multiplicity order.  The content and overall sign are
    dropped (roots are unaffected).
    """
    if p.is_zero():
        raise ValueError("square-free decomposition of zero is undefined")
    _c, f = p.primitive_part()
    f = _normalize_sign(f)
    if f.degree == 0:
        return []
    out: list[tuple[IntPoly, int]] = []
    df = f.derivative(counter)
    a = poly_gcd(f, df, counter)
    b, rb = f.divmod(a, counter)
    if not rb.is_zero():
        raise ArithmeticError("Yun: gcd does not divide f")
    c, rc = df.divmod(a, counter)
    if not rc.is_zero():
        raise ArithmeticError("Yun: gcd does not divide f'")
    d = c - b.derivative(counter)
    i = 1
    while b.degree > 0:
        fac = poly_gcd(b, d, counter)
        if fac.degree > 0:
            out.append((_normalize_sign(fac.primitive_part()[1]), i))
        b_next, r1 = b.divmod(fac, counter)
        if not r1.is_zero():
            raise ArithmeticError("Yun: factor does not divide b")
        c_next, r2 = d.divmod(fac, counter)
        if not r2.is_zero():
            raise ArithmeticError("Yun: factor does not divide d")
        b = b_next
        d = c_next - b.derivative(counter)
        i += 1
    return out
