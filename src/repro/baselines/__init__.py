"""Comparator root finders: the exact Sturm/bisection baseline and the
fixed-precision Aberth-Ehrlich method (the PARI stand-in), plus
floating-point oracles."""

from repro.baselines.sturm_bisect import SturmBisectFinder
from repro.baselines.aberth import AberthFinder, AberthFailure, AberthResult
from repro.baselines.numpy_eig import eigvalsh_roots, companion_roots, max_abs_error

__all__ = [
    "SturmBisectFinder",
    "AberthFinder", "AberthFailure", "AberthResult",
    "eigvalsh_roots", "companion_roots", "max_abs_error",
]
