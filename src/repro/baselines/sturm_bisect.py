"""Classical sequential baseline: Sturm isolation + bisection refinement.

This is the textbook exact real-root finder the parallel algorithm is
implicitly competing against: build the Sturm chain once, isolate the
roots by recursive interval splitting with Sturm counts, then refine
each isolating interval by plain bisection to the requested precision.

Complexity is dominated by the ``mu`` bisection evaluations per root —
with no sieve and no Newton, the cost is linear in ``mu`` where the
paper's hybrid is logarithmic.  The fig8-style benches use it (together
with :mod:`repro.baselines.aberth`) in the role of the PARI comparator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.poly.dense import IntPoly
from repro.poly.gcd import square_free_part
from repro.poly.roots_bounds import root_bound_bits
from repro.poly.sturm import sturm_chain, variations_at_scaled

__all__ = ["SturmBisectFinder"]


@dataclass
class SturmBisectFinder:
    """Exact sequential root finder (baseline).

    Produces the same scaled ceilings ``ceil(2**mu * x)`` as the main
    algorithm, so results are directly comparable (tests assert
    equality on square-free inputs).
    """

    mu: int
    counter: CostCounter = NULL_COUNTER

    def find_roots_scaled(self, p: IntPoly) -> list[int]:
        if p.is_zero() or p.degree < 1:
            return []
        if p.leading_coefficient < 0:
            p = -p
        p = square_free_part(p, self.counter)
        if p.degree == 1:
            from repro.core.interval import solve_linear_scaled

            return [solve_linear_scaled(p, self.mu)]

        chain = sturm_chain(p, self.counter)
        r = root_bound_bits(p)
        mu = self.mu
        lo, hi = -(1 << (r + mu)), 1 << (r + mu)

        # Root counting function V(t) with exact-hit handling: we only
        # ever split at grid points; a grid point that is a root is a
        # measure-zero event handled by nudging the split point.
        def v_at(t: int) -> int:
            return variations_at_scaled(chain, t, mu, self.counter)

        def count(a: int, b: int) -> int:
            return v_at(a) - v_at(b)

        isolated: list[tuple[int, int]] = []

        def isolate(a: int, b: int, k: int) -> None:
            """k roots known in (a, b]; recursively split."""
            if k == 0:
                return
            if k == 1:
                isolated.append((a, b))
                return
            mid = (a + b) >> 1
            if mid == a:  # k >= 2 roots within one grid cell
                isolated.extend([(a, b)] * k)
                return
            # Half-open (a, b] semantics make exact grid-point roots safe:
            # a root at mid is counted by the left half (a, mid].
            kl = count(a, mid)
            isolate(a, mid, kl)
            isolate(mid, b, k - kl)

        total = count(lo, hi)
        isolate(lo, hi, total)
        isolated.sort()

        out: list[int] = []
        for a, b in isolated:
            out.append(self._bisect(p, a, b))
        out.sort()
        return out

    def _bisect(self, p: IntPoly, a: int, b: int) -> int:
        """Return ``min{C in (a, b] : root <= C/2**mu}`` by pure bisection."""
        dp = p.derivative()
        from repro.core.interval import sign_plus

        sigma_a = sign_plus(p, dp, a, self.mu, self.counter)
        while b - a > 1:
            mid = (a + b) >> 1
            if sign_plus(p, dp, mid, self.mu, self.counter) == sigma_a:
                a = mid
            else:
                b = mid
        return b
