"""Aberth-Ehrlich simultaneous iteration in fixed (double) precision.

This baseline plays the role of the PARI root finder in the paper's
Figure 8 comparison: a general-purpose *fixed-working-precision*
sequential method whose cost is essentially insensitive to the
requested output precision ``mu`` (it either reaches machine precision
or fails), and which degrades on high-degree ill-conditioned inputs —
the paper "was unable to run the PARI algorithm on polynomials of
degree larger than 30", and this implementation hits the same wall on
the characteristic-polynomial workload for similar reasons (coefficient
magnitudes overflow double range, close eigenvalues stall convergence).

Failures are reported honestly via :class:`AberthFailure` so the fig8
bench can tabulate them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.poly.dense import IntPoly

__all__ = ["AberthFinder", "AberthFailure", "AberthResult"]


class AberthFailure(RuntimeError):
    """The fixed-precision iteration could not produce trustworthy roots."""


@dataclass
class AberthResult:
    roots: list[float]
    iterations: int
    residual: float


@dataclass
class AberthFinder:
    """Aberth-Ehrlich method with double-precision arithmetic.

    Parameters mirror a typical general-purpose package: a convergence
    tolerance near machine epsilon and an iteration cap.
    """

    tol: float = 1e-13
    max_iter: int = 200

    def find_roots(self, p: IntPoly) -> AberthResult:
        if p.is_zero() or p.degree < 1:
            return AberthResult([], 0, 0.0)
        d = p.degree
        try:
            coeffs = np.array([float(c) for c in p.coeffs], dtype=np.float64)
        except OverflowError:
            coeffs = np.array([np.inf])
        if not np.all(np.isfinite(coeffs)):
            raise AberthFailure(
                "coefficients exceed double-precision range "
                f"(degree {d}, height {p.max_coefficient_bits()} bits)"
            )
        # Normalize to reduce overflow in evaluation.
        coeffs = coeffs / coeffs[-1]
        dcoeffs = coeffs[1:] * np.arange(1, d + 1)

        # Initial guesses: circle centred at the root centroid with the
        # Fujiwara radius (tight for lopsided coefficients like
        # Wilkinson's), points at twisted roots of unity — the standard
        # Aberth initialization.
        centroid = -coeffs[-2] / d
        with np.errstate(over="ignore"):
            fuji = [
                abs(coeffs[d - k]) ** (1.0 / k) for k in range(1, d + 1)
                if coeffs[d - k] != 0
            ]
        radius = 2.0 * max(fuji) if fuji else 1.0
        radius = max(radius, 1e-3)
        angles = 2.0 * np.pi * (np.arange(d) + 0.5) / d + 0.4
        z = centroid + radius * np.exp(1j * angles)

        def horner(cs: np.ndarray, x: np.ndarray) -> np.ndarray:
            acc = np.zeros_like(x)
            for c in cs[::-1]:
                acc = acc * x + c
            return acc

        it = 0
        recent: list[float] = []
        for it in range(1, self.max_iter + 1):
            pv = horner(coeffs, z)
            dv = horner(dcoeffs, z)
            if not (np.all(np.isfinite(pv)) and np.all(np.isfinite(dv))):
                raise AberthFailure(
                    f"overflow during iteration at degree {d}"
                )
            with np.errstate(divide="ignore", invalid="ignore"):
                newton = np.where(dv != 0, pv / dv, 0.0)
                diff = z[:, None] - z[None, :]
                np.fill_diagonal(diff, np.inf)
                repulsion = np.sum(1.0 / diff, axis=1)
                denom = 1.0 - newton * repulsion
                step = np.where(denom != 0, newton / denom, newton)
            z = z - step
            scale = max(1.0, float(np.max(np.abs(z))))
            max_step = float(np.max(np.abs(step)))
            if max_step < self.tol * scale:
                break
            # Round-off floor: ill-conditioned evaluation makes the steps
            # oscillate at some small plateau instead of reaching tol.
            # Accept the plateau once the steps have stopped improving —
            # this is what any fixed-precision package effectively does.
            recent.append(max_step)
            if (
                len(recent) >= 12
                and max_step < 1e-7 * scale
                and min(recent[-6:]) > 0.25 * min(recent[:-6])
            ):
                break
        else:
            raise AberthFailure(
                f"no convergence in {self.max_iter} iterations at degree {d}"
            )

        # All roots must be (numerically) real for this problem class.
        imag_scale = float(np.max(np.abs(z.imag)))
        real_scale = max(1.0, float(np.max(np.abs(z.real))))
        if imag_scale > 1e-6 * real_scale:
            raise AberthFailure(
                f"roots did not converge to the real axis (max imag "
                f"{imag_scale:.2e}) at degree {d}"
            )
        # Quality gate: the Newton correction |p/p'| at a claimed root
        # estimates its error.  A plateau "convergence" with garbage
        # roots (catastrophic cancellation at higher degrees) must be
        # reported as failure — this is the degree wall any fixed
        # precision package hits on this workload.
        pv = horner(coeffs, z)
        dv = horner(dcoeffs, z)
        with np.errstate(divide="ignore", invalid="ignore"):
            err_est = np.where(dv != 0, np.abs(pv / dv), np.inf)
        max_err = float(np.max(err_est))
        if not np.isfinite(max_err) or max_err > 1e-5 * real_scale:
            raise AberthFailure(
                f"estimated root error {max_err:.2e} too large at degree {d} "
                "(double precision insufficient for this input)"
            )
        roots = sorted(float(r) for r in z.real)
        residual = float(np.max(np.abs(horner(coeffs, np.array(roots, dtype=np.complex128)))))
        return AberthResult(roots=roots, iterations=it, residual=residual)
