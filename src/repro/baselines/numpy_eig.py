"""Floating-point oracles for cross-checking (not part of the algorithm).

Two oracles:

* :func:`eigvalsh_roots` — for characteristic-polynomial workloads,
  the symmetric eigensolver applied to the *generating matrix* gives
  backward-stable references for all roots;
* :func:`companion_roots` — ``numpy.roots`` on the coefficients, usable
  for any polynomial but increasingly inaccurate for ill-conditioned
  high-degree inputs (which is itself a datapoint the docs mention:
  the exact method keeps working where double precision gives up).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.poly.dense import IntPoly

__all__ = ["eigvalsh_roots", "companion_roots", "max_abs_error"]


def eigvalsh_roots(matrix: Sequence[Sequence[int]]) -> list[float]:
    """Sorted eigenvalues of a symmetric integer matrix (float64)."""
    a = np.array(matrix, dtype=np.float64)
    return [float(v) for v in np.sort(np.linalg.eigvalsh(a))]


def companion_roots(p: IntPoly) -> list[float]:
    """Sorted real parts of ``numpy.roots`` (float64 companion matrix)."""
    if p.degree < 1:
        return []
    coeffs = [float(c) for c in reversed(p.coeffs)]
    roots = np.roots(coeffs)
    return [float(r) for r in np.sort(roots.real)]


def max_abs_error(approx: Sequence[float], reference: Sequence[float]) -> float:
    """Max absolute difference between two sorted root lists."""
    if len(approx) != len(reference):
        raise ValueError(
            f"length mismatch: {len(approx)} vs {len(reference)}"
        )
    if not approx:
        return 0.0
    a = np.asarray(approx, dtype=np.float64)
    b = np.asarray(reference, dtype=np.float64)
    return float(np.max(np.abs(a - b)))
