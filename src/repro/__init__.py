"""repro: reproduction of Narendran & Tiwari (1992), "Polynomial
Root-Finding: Analysis and Computational Investigation of a Parallel
Algorithm".

Public API quickstart::

    from repro import RealRootFinder, IntPoly

    p = IntPoly.from_roots([-3, 0, 2])          # or any all-real-roots poly
    result = RealRootFinder(mu_bits=32).find_roots(p)
    result.as_floats()                           # [-3.0, 0.0, 2.0]

Subpackages:

- :mod:`repro.core` — the algorithm (remainder sequence, interleaving
  tree, interval problems, task decomposition);
- :mod:`repro.poly` — exact integer polynomial arithmetic;
- :mod:`repro.mpint` — schoolbook bignum (UNIX ``mp`` stand-in);
- :mod:`repro.costmodel` — multiplication counting / quadratic bit costs;
- :mod:`repro.sched` — task DAG, multiprocessor simulator, real
  multiprocessing executor;
- :mod:`repro.analysis` — the paper's Section 4 bounds and predictions;
- :mod:`repro.obs` — tracing spans, JSONL run logs, Chrome-trace export,
  and metrics for real and simulated runs;
- :mod:`repro.resilience` — retry policies, circuit breaker,
  deadlines/bit budgets with partial results, batch checkpoints;
- :mod:`repro.charpoly` — workload generation (Berkowitz char polys);
- :mod:`repro.baselines` — Sturm/bisection and Aberth comparators;
- :mod:`repro.bench` — experiment drivers for every table and figure.
"""

from repro.poly.dense import IntPoly
from repro.core.rootfinder import RealRootFinder, RootResult
from repro.core.certify import certify_roots, CertificationError
from repro.core.scaling import digits_to_bits
from repro.costmodel.counter import CostCounter
from repro.obs.trace import Tracer
from repro.resilience import Budget, BudgetExceeded, PartialResult

__version__ = "1.0.0"

__all__ = [
    "IntPoly",
    "RealRootFinder",
    "RootResult",
    "certify_roots",
    "CertificationError",
    "digits_to_bits",
    "CostCounter",
    "Tracer",
    "Budget",
    "BudgetExceeded",
    "PartialResult",
    "__version__",
]
