"""The standard remainder and quotient sequences (paper Section 2.1, 3.1).

For a degree-``n`` polynomial ``F_0`` with all roots real and distinct the
sequence

    F_1 = F_0',
    F_{i+1} = (Q_i F_i - c_i^2 F_{i-1}) / c_{i-1}^2      (divisor 1 for i=1)

is *normal*: every quotient ``Q_i`` is linear, ``deg F_i = n - i``, all
coefficients stay integral (Collins 1967), and consecutive terms have
interleaving real roots — it is a Sturm sequence up to positive scaling.

The coefficient-level recurrences implemented here are exactly the
paper's Eqs. (15)-(18), which is also the decomposition used for the
fine-grained parallel tasks of Section 3.1:

    q_{i,1} = c_{i-1} c_i
    q_{i,0} = f_{i,n-i} f_{i-1,n-i} - f_{i,n-i-1} f_{i-1,n-i+1}
    f_{i+1,j} = (f_{i,j} q_{i,0} + f_{i,j-1} q_{i,1} - c_i^2 f_{i-1,j}) / c_{i-1}^2
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.obs.trace import NULL_TRACER, Tracer
from repro.poly.dense import IntPoly

__all__ = ["RemainderSequence", "compute_remainder_sequence", "NotSquareFreeError"]

#: Phase name used for cost attribution, shared with the analysis module.
PHASE = "remainder"


class NotSquareFreeError(ValueError):
    """Raised when the input polynomial has repeated (real) roots.

    The remainder sequence then terminates early with ``F_{n*+1} = 0``;
    the caller (:class:`repro.core.rootfinder.RealRootFinder`) catches
    this and falls back to the square-free reduction of DESIGN.md.
    The gcd ``F_{n*}`` reached at termination is attached for reuse.
    """

    def __init__(self, n_star: int, gcd: IntPoly):
        super().__init__(
            f"polynomial is not square-free: remainder sequence terminated "
            f"at index {n_star} with nonconstant gcd of degree {gcd.degree}"
        )
        self.n_star = n_star
        self.gcd = gcd


class NotRealRootedError(ValueError):
    """Raised when the remainder sequence violates the structure that
    all-real-roots guarantees (non-normal chain or sign flips).

    The algorithm's correctness proof needs every root real; detecting
    the violation exactly (instead of returning garbage) is the
    production-quality behaviour.
    """


@dataclass
class RemainderSequence:
    """The computed sequences and derived scalars.

    Attributes
    ----------
    F:
        ``F[0] .. F[n]``; ``F[n]`` is the final (nonzero) constant.
    Q:
        ``Q[i]`` for ``1 <= i <= n-1`` is the linear quotient; ``Q[0]`` is
        a placeholder ``None``-like constant and never used.
    c:
        ``c[i] = lc(F_i)`` for ``i >= 1``; ``c[0]`` is fixed to 1, the
        normalization used by the matrices ``S_1`` / ``T_{1,j}``
        (paper Eq. (1), Eq. (7); the appendix takes ``c_0 = sgn(lc F_0)``
        so ``c_0^2 = 1``).
    """

    n: int
    F: list[IntPoly]
    Q: list[IntPoly]
    c: list[int]

    def quotient(self, i: int) -> IntPoly:
        if not 1 <= i <= self.n - 1:
            raise IndexError(f"Q_i defined for 1 <= i <= n-1, got {i}")
        return self.Q[i]

    def lead(self, i: int) -> int:
        return self.c[i]

    def same_sign_leads(self) -> bool:
        """Theorem 1(i): all ``lc(F_i)`` share one sign for real-rooted input."""
        signs = {1 if ci > 0 else -1 for ci in self.c[1:] if ci != 0}
        return len(signs) <= 1


def compute_remainder_sequence(
    p0: IntPoly,
    counter: CostCounter = NULL_COUNTER,
    tracer: Tracer = NULL_TRACER,
) -> RemainderSequence:
    """Compute the full normal remainder/quotient sequence of ``p0``.

    ``p0`` must have a positive leading coefficient (callers normalize);
    raises :class:`NotSquareFreeError` on early termination (repeated
    roots) and :class:`NotRealRootedError` on a non-normal chain, which
    cannot happen for square-free real-rooted inputs.  A real ``tracer``
    records the whole sequence as one span (the per-coefficient grains
    of Section 3.1 are far below useful span granularity).
    """
    if p0.is_zero() or p0.degree < 1:
        raise ValueError("need a nonconstant polynomial")
    if p0.leading_coefficient < 0:
        raise ValueError("leading coefficient must be positive (normalize first)")

    n = p0.degree
    with tracer.span("remainder", phase=PHASE, degree=n), counter.phase(PHASE):
        F: list[IntPoly] = [p0, p0.derivative(counter)]
        Q: list[IntPoly] = [IntPoly.zero()]  # Q[0] placeholder
        c: list[int] = [1, F[1].leading_coefficient]

        for i in range(1, n):
            f_prev = F[i - 1]
            f_cur = F[i]
            if f_cur.degree != n - i:
                raise NotRealRootedError(
                    f"non-normal chain at i={i}: deg F_i = {f_cur.degree}, "
                    f"expected {n - i} — input is not a real-rooted "
                    "square-free polynomial"
                )
            ci = f_cur.leading_coefficient
            ci_prev = f_prev.leading_coefficient  # actual lc, = c[i-1] for i>=2

            # Eq (15)-(17): the two quotient coefficients.
            q1 = counter.mul(ci_prev, ci)
            q0 = counter.mul(ci, f_prev.coefficient(n - i)) - counter.mul(
                f_cur.coefficient(n - i - 1), ci_prev
            )
            Qi = IntPoly((q0, q1))
            Q.append(Qi)

            # Eq (18): coefficients of F_{i+1}, degree n-i-1.
            divisor = 1 if i == 1 else counter.mul(c[i - 1], c[i - 1])
            ci_sq = counter.mul(ci, ci)
            coeffs: list[int] = []
            for j in range(0, n - i):
                t = (
                    counter.mul(f_cur.coefficient(j), q0)
                    + counter.mul(f_cur.coefficient(j - 1) if j >= 1 else 0, q1)
                    - counter.mul(ci_sq, f_prev.coefficient(j))
                )
                if divisor != 1:
                    val, rem = counter.divmod(t, divisor)
                    if rem != 0:
                        raise ArithmeticError(
                            f"Collins integrality violated at i={i}, j={j}"
                        )
                    coeffs.append(val)
                else:
                    coeffs.append(t)
            f_next = IntPoly(coeffs)

            if f_next.is_zero():
                # F_{i+1} = 0: F_i divides F_{i-1}; F_i is (a multiple of)
                # gcd(F_0, F_1).  Per Sec 2.3 this happens exactly when p0
                # has repeated roots, at i = n*.
                raise NotSquareFreeError(i, f_cur)
            F.append(f_next)
            c.append(f_next.leading_coefficient)

        seq = RemainderSequence(n=n, F=F, Q=Q, c=c)
        if F[n].degree != 0:
            raise NotRealRootedError(
                f"final remainder F_n has degree {F[n].degree}, expected 0"
            )
        if not seq.same_sign_leads():
            raise NotRealRootedError(
                "leading coefficients of the remainder sequence change sign "
                "— input has non-real roots (Theorem 1(i) violated)"
            )
        return seq
