"""mu-scaled fixed-point helpers (paper Sections 1 and 3.3).

The algorithm computes the mu-approximation of each root ``x``, defined
as the grid value ``2**-mu * ceil(2**mu * x)`` (the smallest grid point
``>= x``; the paper's bracket notation, read off from Case 2a of the
interval analysis).  Internally every rational is identified with the
integer ``2**mu * x`` so that only integer arithmetic is needed.
"""

from __future__ import annotations

from fractions import Fraction

__all__ = [
    "ceil_div",
    "floor_div",
    "mu_ceil_of_rational",
    "scaled_to_fraction",
    "scaled_to_float",
    "rescale",
    "digits_to_bits",
]


def ceil_div(a: int, b: int) -> int:
    """Exact ``ceil(a / b)`` for ``b > 0``."""
    if b <= 0:
        raise ValueError("ceil_div needs b > 0")
    return -((-a) // b)


def floor_div(a: int, b: int) -> int:
    """Exact ``floor(a / b)`` for ``b > 0``."""
    if b <= 0:
        raise ValueError("floor_div needs b > 0")
    return a // b


def mu_ceil_of_rational(num: int, den: int, mu: int) -> int:
    """``ceil(2**mu * num / den)`` — the scaled mu-approximation of num/den.

    ``den`` may be negative; the sign is normalized first.
    """
    if den == 0:
        raise ZeroDivisionError("rational with zero denominator")
    if den < 0:
        num, den = -num, -den
    return ceil_div(num << mu, den)


def scaled_to_fraction(scaled: int, mu: int) -> Fraction:
    """The exact rational value of a scaled grid point."""
    return Fraction(scaled, 1 << mu)


def scaled_to_float(scaled: int, mu: int) -> float:
    """Float value of a scaled grid point (lossy, for reporting only)."""
    return scaled / (1 << mu)


def rescale(scaled: int, mu_from: int, mu_to: int) -> int:
    """Re-express a grid point at another precision.

    Going finer is exact; going coarser takes the ceiling (consistent
    with the mu-approximation convention).
    """
    if mu_to >= mu_from:
        return scaled << (mu_to - mu_from)
    return ceil_div(scaled, 1 << (mu_from - mu_to))


def digits_to_bits(digits: int) -> int:
    """Decimal digits of precision -> bits (ceil), for the paper's
    mu-in-digits experiment grids."""
    if digits < 0:
        raise ValueError("digits must be >= 0")
    # ceil(digits * log2(10)); exact enough for any practical digit count.
    from math import ceil, log2

    return ceil(digits * log2(10)) if digits else 0
