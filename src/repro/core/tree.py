"""The interleaving tree of polynomials (paper Sections 2.1 and 3.2).

Every node is labeled ``[i, j]`` (1-based, ``i <= j``) and carries the
polynomial ``P_{i,j}`` of degree ``j - i + 1`` whose roots are
interleaved by the roots of its two children ``[i, k-1]`` and
``[k+1, j]`` (Theorem 1).  Concretely:

* a *rightmost* node (``j == n``) carries ``P_{i,n} = F_{i-1}`` straight
  from the remainder sequence — no matrix work;
* every other node carries the 2x2 matrix ``T_{i,j}`` with
  ``P_{i,j} = T_{i,j}(2,2)``, combined bottom-up from its children by
  the integer-scaled version of the paper's Eq. (9):

      T_{i,j} = T_{k+1,j} @ U_k @ T_{i,k-1} / (c_{k-1}^2 c_k^2)

  where ``U_k = c_{k-1}^2 S_k = [[0, c_{k-1}^2], [-c_k^2, Q_k]]`` is the
  denominator-free form of the paper's ``S_k`` (Eqs. (1)-(2)) and the
  division is exact by Collins' theory (checked at runtime);
* a leaf ``[i, i]`` (``i < n``) has ``T_{i,i} = U_i`` and
  ``P_{i,i} = Q_i``; the leaf ``[n, n]`` is rightmost with
  ``P_{n,n} = F_{n-1}``;
* an *empty* node ``[i, i-1]`` stands for the degree-0 polynomial 1 and
  the matrix ``T_{i,i-1} = c_{i-1}^2 * I`` (empty matrix product).

The split index is ``k = (i + j) // 2``, which keeps the tree balanced
as required for the Section 4.2 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.obs.trace import NULL_TRACER, Tracer
from repro.core.remainder import RemainderSequence
from repro.poly.dense import IntPoly
from repro.poly.matrix import PolyMatrix2x2

__all__ = ["TreeNode", "InterleavingTree", "split_index", "u_matrix"]

#: Cost phase for all tree-polynomial computation.
PHASE = "tree"


def split_index(i: int, j: int) -> int:
    """The pivot ``k`` for node ``[i, j]``: children ``[i,k-1]``, ``[k+1,j]``."""
    return (i + j) // 2


def u_matrix(seq: RemainderSequence, k: int) -> PolyMatrix2x2:
    """``U_k = c_{k-1}^2 S_k``, the integer-scaled transfer matrix."""
    ck1_sq = seq.c[k - 1] * seq.c[k - 1]
    ck_sq = seq.c[k] * seq.c[k]
    return PolyMatrix2x2(
        IntPoly.zero(),
        IntPoly.constant(ck1_sq),
        IntPoly.constant(-ck_sq),
        seq.quotient(k),
    )


@dataclass
class TreeNode:
    """One node of the interleaving tree."""

    i: int
    j: int
    level: int
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    poly: Optional[IntPoly] = None
    matrix: Optional[PolyMatrix2x2] = None
    #: scaled integer root approximations ceil(2**mu * x), ascending;
    #: filled by the bottom-up interval phase.
    roots_scaled: Optional[list[int]] = field(default=None, repr=False)

    @property
    def label(self) -> tuple[int, int]:
        return (self.i, self.j)

    @property
    def degree(self) -> int:
        """Degree of P_{i,j} = number of roots at this node."""
        return self.j - self.i + 1

    @property
    def is_empty(self) -> bool:
        return self.j < self.i

    @property
    def is_leaf(self) -> bool:
        return self.i == self.j

    @property
    def pivot(self) -> int:
        return split_index(self.i, self.j)

    def __iter__(self) -> Iterator["TreeNode"]:
        """Post-order traversal (children before parents): the bottom-up
        execution order of the sequential algorithm."""
        if self.left is not None:
            yield from self.left
        if self.right is not None:
            yield from self.right
        yield self


class InterleavingTree:
    """Builds the node structure and computes every ``P_{i,j}``.

    Structure construction is the paper's top-down RECURSE phase;
    :meth:`compute_polynomials` is the matrix part of the bottom-up
    phase (the COMPUTEPOLY tasks).  Interval solving is driven
    externally by :class:`repro.core.rootfinder.RealRootFinder` (or by
    the task graph of :mod:`repro.core.tasks`).
    """

    def __init__(self, seq: RemainderSequence):
        self.seq = seq
        self.n = seq.n
        self.root = self._build(1, self.n, 0)

    # -- structure ------------------------------------------------------
    def _build(self, i: int, j: int, level: int) -> TreeNode:
        node = TreeNode(i=i, j=j, level=level)
        if j <= i:  # leaf or empty: no children
            return node
        k = split_index(i, j)
        node.left = self._build(i, k - 1, level + 1)
        node.right = self._build(k + 1, j, level + 1)
        return node

    def nodes_postorder(self) -> Iterator[TreeNode]:
        return iter(self.root)

    def nodes_by_level(self) -> dict[int, list[TreeNode]]:
        out: dict[int, list[TreeNode]] = {}
        for node in self.root:
            out.setdefault(node.level, []).append(node)
        for lst in out.values():
            lst.sort(key=lambda nd: nd.i)
        return out

    def node_count(self) -> int:
        return sum(1 for _ in self.root)

    # -- polynomial computation ------------------------------------------
    def compute_polynomials(
        self,
        counter: CostCounter = NULL_COUNTER,
        check: bool = False,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        """Fill ``poly`` (and ``matrix`` where applicable) on every node.

        With ``check=True``, asserts Theorem 1's degree and
        positive-leading-coefficient conclusions at every node.  A real
        ``tracer`` records one span per combined interior node (the
        COMPUTEPOLY grains — leaves and spine adoptions are too cheap
        to be worth a span each).
        """
        with counter.phase(PHASE):
            for node in self.root:
                if node.is_empty or node.is_leaf or node.j == self.n:
                    self._compute_node(node, counter)
                else:
                    with tracer.span("tree.combine", phase="tree",
                                     i=node.i, j=node.j, level=node.level):
                        self._compute_node(node, counter)
                if check and not node.is_empty:
                    self._check_node(node)

    def _compute_node(self, node: TreeNode, counter: CostCounter) -> None:
        seq = self.seq
        i, j = node.i, node.j
        if node.is_empty:
            node.poly = IntPoly.one()
            c_sq = seq.c[i - 1] * seq.c[i - 1]
            node.matrix = PolyMatrix2x2.scalar(c_sq)
            return
        if j == self.n:
            # Rightmost spine: P_{i,n} = F_{i-1}, no matrix.
            node.poly = seq.F[i - 1]
            node.matrix = None
            return
        if node.is_leaf:
            node.matrix = u_matrix(seq, i)
            node.poly = node.matrix.entry(2, 2)  # Q_i
            return
        # Interior, non-rightmost: combine children (Eq. 9, integer form).
        k = node.pivot
        assert node.left is not None and node.right is not None
        t_left = node.left.matrix
        t_right = node.right.matrix
        assert t_left is not None and t_right is not None, (
            "children of a non-rightmost interior node always carry matrices"
        )
        u_k = u_matrix(seq, k)
        prod = t_right.mul(u_k, counter).mul(t_left, counter)
        divisor = (seq.c[k - 1] * seq.c[k - 1]) * (seq.c[k] * seq.c[k])
        node.matrix = prod.exact_div_scalar(divisor, counter)
        node.poly = node.matrix.entry(2, 2)

    def _check_node(self, node: TreeNode) -> None:
        p = node.poly
        assert p is not None
        if p.degree != node.degree:
            raise AssertionError(
                f"P_{node.label} has degree {p.degree}, expected {node.degree}"
            )
        if p.leading_coefficient <= 0 and node.j < self.n:
            raise AssertionError(
                f"P_{node.label} has non-positive leading coefficient"
            )

    # -- direct (slow) reference computation for tests ---------------------
    def direct_t_matrix(self, i: int, j: int) -> PolyMatrix2x2:
        """``T_{i,j}`` from the definition (Eqs. 6-7): product of U's with
        one exact scalar division.  Exponential-free but unbalanced; used
        as the test oracle for the combine rule."""
        seq = self.seq
        if j < i:
            return PolyMatrix2x2.scalar(seq.c[i - 1] * seq.c[i - 1])
        acc = u_matrix(seq, i)
        divisor = 1
        for l in range(i + 1, j + 1):
            acc = u_matrix(seq, l).mul(acc)
            divisor *= seq.c[l - 1] * seq.c[l - 1]
        return acc.exact_div_scalar(divisor)
