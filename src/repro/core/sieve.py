"""The hybrid root solver: double-exponential sieve, bisection, Newton.

This is the paper's Section 2.2 method for Case 2c — a true isolating
interval ``(a, b]`` containing exactly one root ``xi`` of ``p``:

1. **Double-exponential sieve** (Ben-Or & Tiwari): probe at offsets
   ``l/2, l/4, l/16, l/256, ...`` (``l / 2**(2**t)``) from the near end
   until the root is pinned in an interval whose distance from the
   dangerous end is at least half its length.  At that point the nearest
   *other* root of ``p`` is at least half the bracket length away, so by
   Renegar's lemma (Lemma 2.1) a further ``log2(10 d^2)`` bisections
   make any point of the bracket a quadratically convergent Newton
   start.
2. **Bisection**: exactly ``ceil(log2(10 d^2))`` halvings.
3. **Newton**: integer Newton steps on the scaled grid, each certified
   against a maintained sign bracket, with automatic bisection fallback
   whenever a step fails to shrink the bracket — so the solver is
   *always* exact and terminating, and quadratically convergent in the
   regular case.

Everything operates on the integer grid ``y = 2**mu * x``; the answer
returned is exactly ``ceil(2**mu * xi)``.

Deviation noted for reviewers: after a sieve round ends with the root in
the right part of the scanned interval, the paper tests ``xi >= a + l1/2``
explicitly; here that test *is* the next round's first probe, which can
cost one extra evaluation per round but preserves the
``O(log^2 X)``-evaluations worst case (Eq. 38) and the constant-rounds
average case (Eq. 41).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.obs.trace import NULL_TRACER, Tracer
from repro.poly.dense import IntPoly
from repro.poly.eval import ScaledEvaluator

__all__ = ["HybridSolver", "IntervalStats", "bisection_budget"]

PHASE_SIEVE = "interval.sieve"
PHASE_BISECTION = "interval.bisection"
PHASE_NEWTON = "interval.newton"


def bisection_budget(degree: int) -> int:
    """``ceil(log2(10 * d^2))`` — the bisection count of Section 2.2."""
    target = 10 * degree * degree
    return max(1, (target - 1).bit_length())


@dataclass
class IntervalStats:
    """Per-phase evaluation and iteration counters for one run.

    These are the observables behind Figures 6-7 (bisection-phase
    multiplication counts / bit complexity) and the I(X, d) iteration
    model of Eqs. (38) and (41).
    """

    evaluations: int = 0
    preinterval_evals: int = 0
    sieve_evals: int = 0
    bisection_evals: int = 0
    newton_evals: int = 0
    newton_iters: int = 0
    sieve_rounds: int = 0
    solves: int = 0
    case1: int = 0
    case2a: int = 0
    case2b: int = 0
    case2c: int = 0
    #: per-solve (sieve_evals, bisection_evals, newton_iters) triples
    per_solve: list[tuple[int, int, int]] = field(default_factory=list)

    def merge(self, other: "IntervalStats") -> None:
        self.evaluations += other.evaluations
        self.preinterval_evals += other.preinterval_evals
        self.sieve_evals += other.sieve_evals
        self.bisection_evals += other.bisection_evals
        self.newton_evals += other.newton_evals
        self.newton_iters += other.newton_iters
        self.sieve_rounds += other.sieve_rounds
        self.solves += other.solves
        self.case1 += other.case1
        self.case2a += other.case2a
        self.case2b += other.case2b
        self.case2c += other.case2c
        self.per_solve.extend(other.per_solve)


def _nearest_div(a: int, b: int) -> int:
    """Round ``a / b`` to the nearest integer (ties toward +inf); any b != 0."""
    if b < 0:
        a, b = -a, -b
    q, r = divmod(a, b)
    if 2 * r >= b:
        q += 1
    return q


#: Interval-solver strategies (paper Section 2.2: "there are several
#: ways to estimate the root" — bisection, Newton, and the hybrid).
STRATEGIES = ("hybrid", "bisection", "newton")


class HybridSolver:
    """Finds ``ceil(2**mu * xi)`` for an isolated root ``xi`` of ``p``.

    The solver never trusts convergence heuristics: it maintains the
    bracket invariant ``sign+(lo) == sigma_a`` and ``sign+(hi) != sigma_a``
    (where ``sign+`` is the sign just right of a grid point), shrinks it
    monotonically, and returns ``hi`` when the bracket has length one.

    ``strategy`` selects among the paper's Section 2.2 alternatives:

    * ``"hybrid"`` (default, the paper's choice): sieve, then
      ``log2(10 d^2)`` bisections, then guarded Newton — worst case
      ``O(log^2 X)`` evaluations, typical ``O(log d + log X)``;
    * ``"bisection"``: binary search only — ``Theta(log(bracket))``,
      i.e. linear in ``mu``, the classical method the hybrid beats;
    * ``"newton"``: guarded Newton directly from the raw bracket, no
      sieve/bisection warm-up — exact (the bracket guard guarantees
      termination) but without Renegar's quadratic-from-the-start
      guarantee.
    """

    def __init__(
        self,
        p: IntPoly,
        dp: IntPoly,
        mu: int,
        counter: CostCounter = NULL_COUNTER,
        stats: IntervalStats | None = None,
        strategy: str = "hybrid",
        tracer: Tracer = NULL_TRACER,
    ):
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; pick one of {STRATEGIES}"
            )
        self.p = p
        self.dp = dp
        self.mu = mu
        self.counter = counter
        self.stats = stats if stats is not None else IntervalStats()
        self.strategy = strategy
        self.tracer = tracer
        # One-time coefficient scaling (paper Sec 4.3): evaluations are
        # then pure integer Horner with no per-step shifting.
        self.ev_p = ScaledEvaluator(p, mu)
        self.ev_dp = ScaledEvaluator(dp, mu)

    # -- counted sign probe -------------------------------------------------
    def _sign_plus(self, y: int, phase: str, bucket: str) -> int:
        with self.counter.phase(phase):
            v = self.ev_p.eval(y, self.counter)
            self.stats.evaluations += 1
            setattr(self.stats, bucket, getattr(self.stats, bucket) + 1)
            if v != 0:
                return 1 if v > 0 else -1
            dv = self.ev_dp.eval(y, self.counter)
            self.stats.evaluations += 1
            setattr(self.stats, bucket, getattr(self.stats, bucket) + 1)
            if dv == 0:
                raise ArithmeticError("p and p' vanish together: not square-free")
            return 1 if dv > 0 else -1

    # -- the three phases ----------------------------------------------------
    def solve(self, lo: int, hi: int, sigma_a: int) -> int:
        """Return ``min{C in (lo, hi] : sign+(C) != sigma_a}``.

        Preconditions (guaranteed by the Case 2c analysis): exactly one
        root of ``p`` lies in ``(lo/2**mu, hi/2**mu]``; ``sign+(lo) ==
        sigma_a`` and ``sign+(hi) != sigma_a``.
        """
        if hi <= lo:
            raise ValueError("empty bracket")
        self.stats.solves += 1
        bracket0 = hi - lo
        ev0_s = self.stats.sieve_evals
        ev0_b = self.stats.bisection_evals
        it0_n = self.stats.newton_iters

        if self.strategy == "bisection":
            result = self._pure_bisection(lo, hi, sigma_a)
        elif self.strategy == "newton":
            result = self._newton_phase(lo, hi, sigma_a)
        else:
            lo, hi = self._sieve_phase(lo, hi, sigma_a)
            lo, hi = self._bisection_phase(lo, hi, sigma_a)
            result = self._newton_phase(lo, hi, sigma_a)

        sieve_e = self.stats.sieve_evals - ev0_s
        bisect_e = self.stats.bisection_evals - ev0_b
        newton_i = self.stats.newton_iters - it0_n
        self.stats.per_solve.append((sieve_e, bisect_e, newton_i))
        self.tracer.event(
            "hybrid_solve", strategy=self.strategy, sieve_evals=sieve_e,
            bisection_evals=bisect_e, newton_iters=newton_i,
            bracket_bits=bracket0.bit_length(),
        )
        return result

    def _sieve_phase(self, lo: int, hi: int, sigma_a: int) -> tuple[int, int]:
        """Double-exponential sieve toward the end the root is close to.

        The first (midpoint) probe decides which end is *dangerous*: the
        one whose far side may hold other roots of ``p`` arbitrarily
        close by.  The sieve then probes at offsets ``l / 2**(2**t)``
        from that end (paper's WLOG-left case, mirrored when the root
        falls in the right half).  A round ends when a probe finds the
        root beyond it; if that probe was the round's midpoint (t = 0),
        the root now sits at distance >= half the bracket from both
        dangerous regions and the sieve stops — Renegar's condition for
        the subsequent ``log2(10 d^2)`` bisections.
        """
        if hi - lo <= 2:
            return lo, hi
        length = hi - lo
        mid = lo + (length >> 1)
        if self._sign_plus(mid, PHASE_SIEVE, "sieve_evals") != sigma_a:
            hi = mid
            toward_lo = True
        else:
            lo = mid
            toward_lo = False

        while hi - lo > 2:
            self.stats.sieve_rounds += 1
            length = hi - lo
            t = 0
            round_done = False
            while hi - lo > 2:
                shift = 1 << t  # probe offset = length / 2**(2**t)
                off = length >> shift if shift < length.bit_length() else 0
                if off < 1:
                    off = 1
                pt = lo + off if toward_lo else hi - off
                if pt <= lo or pt >= hi:
                    if off <= 1:
                        round_done = True
                        break
                    t += 1
                    continue
                s = self._sign_plus(pt, PHASE_SIEVE, "sieve_evals")
                near_side = (s != sigma_a) if toward_lo else (s == sigma_a)
                if near_side:
                    # Root between the dangerous end and the probe: zoom in.
                    if toward_lo:
                        hi = pt
                    else:
                        lo = pt
                    t += 1
                else:
                    # Root beyond the probe: the dangerous end is now at
                    # distance >= off from the root.
                    if toward_lo:
                        lo = pt
                    else:
                        hi = pt
                    round_done = t == 0
                    break
            else:
                round_done = True
            if round_done:
                break
        return lo, hi

    def _pure_bisection(self, lo: int, hi: int, sigma_a: int) -> int:
        """The classical method: halve until the bracket has length one."""
        while hi - lo > 1:
            mid = (lo + hi) >> 1
            if self._sign_plus(mid, PHASE_BISECTION, "bisection_evals") == sigma_a:
                lo = mid
            else:
                hi = mid
        return hi

    def _bisection_phase(self, lo: int, hi: int, sigma_a: int) -> tuple[int, int]:
        budget = bisection_budget(self.p.degree)
        for _ in range(budget):
            if hi - lo <= 1:
                break
            mid = (lo + hi) >> 1
            if self._sign_plus(mid, PHASE_BISECTION, "bisection_evals") == sigma_a:
                lo = mid
            else:
                hi = mid
        return lo, hi

    def _newton_phase(self, lo: int, hi: int, sigma_a: int) -> int:
        """Bracket-guarded integer Newton.

        The iterates typically converge to the root *from one side*, so
        the far bracket edge never moves on its own; demanding the
        bracket close by sign updates alone would degrade to bisection
        (one bit per step).  Instead, when a Newton step shrinks below
        one grid unit — which, in the quadratic basin guaranteed by the
        sieve + bisection phases, means the true root is within a grid
        step of the current iterate — the answer is certified with a
        single probe adjacent to the converged edge.
        """
        counter = self.counter
        z = (lo + hi) >> 1
        if z <= lo:
            z = hi
        while hi - lo > 1:
            self.stats.newton_iters += 1
            with counter.phase(PHASE_NEWTON):
                pv = self.ev_p.eval(z, counter)
                dv = self.ev_dp.eval(z, counter)
            self.stats.evaluations += 2
            self.stats.newton_evals += 2
            # z's sign updates the bracket (derivative breaks exact hits).
            if pv != 0:
                s = 1 if pv > 0 else -1
            else:
                s = 1 if dv > 0 else (-1 if dv < 0 else 0)
                if s == 0:
                    raise ArithmeticError("p and p' vanish together")
            if s == sigma_a:
                lo = max(lo, z)
            else:
                hi = min(hi, z)
            if hi - lo <= 1:
                break
            # Newton step in grid units: 2**mu * p(x)/p'(x) with
            # pv = 2**(d*mu) p(x) and dv = 2**((d-1)*mu) p'(x), so the
            # scale factors cancel to exactly pv/dv.
            delta = _nearest_div(pv, dv) if dv != 0 else None
            if delta is not None and abs(delta) <= 1:
                # Converged to sub-grid accuracy: certify at the edge.
                if s != sigma_a:
                    # Root <= z = hi; is it in (hi-1, hi]?
                    probe = hi - 1
                    if self._sign_plus(probe, PHASE_NEWTON, "newton_evals") == sigma_a:
                        return hi
                    hi = probe
                else:
                    # Root > z = lo; is it in (lo, lo+1]?
                    probe = lo + 1
                    if self._sign_plus(probe, PHASE_NEWTON, "newton_evals") != sigma_a:
                        return probe
                    lo = probe
                if hi - lo <= 1:
                    break
                z = (lo + hi) >> 1
                continue
            z_next = z - delta if delta is not None else (lo + hi) >> 1
            if not (lo < z_next < hi) or z_next == z:
                z_next = (lo + hi) >> 1  # bisection fallback
                if z_next <= lo:
                    z_next = hi
            z = z_next
        return hi
