"""Incremental precision refinement of computed roots.

Once the tree has isolated the roots at precision ``mu``, pushing any
root (or all of them) to a higher precision ``mu' > mu`` does not need
the remainder sequence or the tree again: each reported cell
``(v - 2**-mu, v]`` is already an isolating interval for its root, so
the hybrid solver can be re-run directly on the rescaled bracket.

This is the natural production workflow — isolate once, refine on
demand — and its cost per root is just the interval-solver cost at the
new precision (Newton doubles correct bits, so going from 32 to 1024
bits costs ~5 iterations).
"""

from __future__ import annotations

import time

from repro.core.certify import _sign_right_limit, _variations_right_limit
from repro.core.rootfinder import RootResult
from repro.core.sieve import HybridSolver, IntervalStats
from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.poly.dense import IntPoly
from repro.poly.eval import ScaledEvaluator
from repro.poly.gcd import square_free_part
from repro.poly.sturm import sturm_chain

__all__ = [
    "EvenMultiplicityError",
    "SharedCellError",
    "refine_root",
    "refine_result",
]


class EvenMultiplicityError(ValueError):
    """The bracket holds a root of even multiplicity, so the polynomial
    does not change sign across it.  Refine the *square-free part*
    instead (or use :func:`refine_result`, which does so for you)."""


class SharedCellError(ValueError):
    """The bracket holds two or more distinct roots — the original
    precision could not separate them.  Use :func:`refine_result`,
    which detects shared cells and re-isolates at the finer grid."""


def _diagnose_bad_bracket(
    p: IntPoly, lo: int, hi: int, mu_to: int, counter: CostCounter
) -> ValueError:
    """Explain *why* the bracket shows no sign change (exact Sturm count).

    Returns (never raises) the most actionable error for the caller to
    raise: the half-open cell ``(lo, hi] * 2**-mu_to`` holds either no
    root (stale/wrong approximation), one root of even multiplicity, or
    several distinct roots sharing the cell.
    """
    sf = square_free_part(p, counter)
    chain = sturm_chain(sf, counter)
    k = (_variations_right_limit(chain, lo, mu_to, counter)
         - _variations_right_limit(chain, hi, mu_to, counter))
    if k == 0:
        return ValueError(
            "bracket does not isolate a root: the cell contains no root "
            "of p at all — was the approximation produced at a different "
            "precision, or for a different polynomial?"
        )
    if k >= 2:
        return SharedCellError(
            f"bracket does not isolate a root: the cell contains {k} "
            "distinct roots — the source precision could not separate "
            "them; use refine_result, which re-isolates shared cells"
        )
    # Exactly one distinct root, yet p has no sign change across the
    # cell: the root's multiplicity is even.
    return EvenMultiplicityError(
        "bracket holds one root of even multiplicity, so p does not "
        "change sign across it; refine the square-free part of p "
        "instead (refine_result does this automatically)"
    )


def refine_root(
    p: IntPoly,
    scaled: int,
    mu_from: int,
    mu_to: int,
    counter: CostCounter = NULL_COUNTER,
    stats: IntervalStats | None = None,
) -> int:
    """Refine one root approximation to a finer grid.

    ``scaled`` must be ``ceil(2**mu_from * x)`` for a simple root ``x``
    of ``p`` that is the *only* root in ``(scaled-1, scaled] * 2**-mu_from``
    (which :class:`~repro.core.rootfinder.RealRootFinder` guarantees
    when the approximation value is unique in its result).  Returns
    ``ceil(2**mu_to * x)``.
    """
    if mu_to < mu_from:
        raise ValueError("mu_to must be >= mu_from")
    if mu_to == mu_from:
        return scaled
    shift = mu_to - mu_from
    lo = (scaled - 1) << shift
    hi = scaled << shift
    dp = p.derivative()

    # Endpoint signs on the fine grid.
    ev_p = ScaledEvaluator(p, mu_to)
    ev_dp = ScaledEvaluator(dp, mu_to)

    def sign_plus(y: int) -> int:
        v = ev_p.eval(y, counter)
        if v != 0:
            return 1 if v > 0 else -1
        dv = ev_dp.eval(y, counter)
        if dv != 0:
            return 1 if dv > 0 else -1
        # p and p' vanish together: a repeated root sits exactly on the
        # probe point.  Continue the derivative walk — exact right-limit
        # sign, same logic as the certification oracle — so the caller
        # gets the actionable bad-bracket diagnosis instead of a crash.
        return _sign_right_limit(p, y, mu_to, counter)

    sigma_a = sign_plus(lo)
    if sign_plus(hi) == sigma_a:
        raise _diagnose_bad_bracket(p, lo, hi, mu_to, counter)
    solver = HybridSolver(p, dp, mu_to, counter=counter, stats=stats)
    return solver.solve(lo, hi, sigma_a)


def refine_result(
    result: RootResult,
    p: IntPoly,
    mu_to: int,
    counter: CostCounter = NULL_COUNTER,
) -> RootResult:
    """Refine every root of a :class:`RootResult` to precision ``mu_to``.

    Cells shared by several near-identical roots (possible when the
    original ``mu`` could not separate them) are re-separated by
    re-running the finder on the square-free part restricted to... — in
    practice we simply detect the situation and fall back to a fresh
    full run at ``mu_to``, which is always correct.
    """
    from repro.core.rootfinder import RealRootFinder

    if mu_to < result.mu:
        raise ValueError("mu_to must be >= the result's precision")
    if len(set(result.scaled)) != len(result.scaled):
        finder = RealRootFinder(mu_bits=mu_to, counter=counter)
        return finder.find_roots(p)

    t0 = time.perf_counter()
    sf = (p if result.degree == result.square_free_degree
          else square_free_part(p, counter))
    if sf.leading_coefficient < 0:
        sf = -sf
    stats = IntervalStats()
    new_scaled = [
        refine_root(sf, s, result.mu, mu_to, counter, stats)
        for s in result.scaled
    ]
    return RootResult(
        mu=mu_to,
        scaled=new_scaled,
        multiplicities=list(result.multiplicities),
        degree=result.degree,
        square_free_degree=result.square_free_degree,
        counter=counter,
        stats=stats,
        elapsed_seconds=time.perf_counter() - t0,
    )
