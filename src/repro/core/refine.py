"""Incremental precision refinement of computed roots.

Once the tree has isolated the roots at precision ``mu``, pushing any
root (or all of them) to a higher precision ``mu' > mu`` does not need
the remainder sequence or the tree again: each reported cell
``(v - 2**-mu, v]`` is already an isolating interval for its root, so
the hybrid solver can be re-run directly on the rescaled bracket.

This is the natural production workflow — isolate once, refine on
demand — and its cost per root is just the interval-solver cost at the
new precision (Newton doubles correct bits, so going from 32 to 1024
bits costs ~5 iterations).
"""

from __future__ import annotations

from repro.core.rootfinder import RootResult
from repro.core.sieve import HybridSolver, IntervalStats
from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.poly.dense import IntPoly
from repro.poly.eval import ScaledEvaluator
from repro.poly.gcd import square_free_part

__all__ = ["refine_root", "refine_result"]


def refine_root(
    p: IntPoly,
    scaled: int,
    mu_from: int,
    mu_to: int,
    counter: CostCounter = NULL_COUNTER,
    stats: IntervalStats | None = None,
) -> int:
    """Refine one root approximation to a finer grid.

    ``scaled`` must be ``ceil(2**mu_from * x)`` for a simple root ``x``
    of ``p`` that is the *only* root in ``(scaled-1, scaled] * 2**-mu_from``
    (which :class:`~repro.core.rootfinder.RealRootFinder` guarantees
    when the approximation value is unique in its result).  Returns
    ``ceil(2**mu_to * x)``.
    """
    if mu_to < mu_from:
        raise ValueError("mu_to must be >= mu_from")
    if mu_to == mu_from:
        return scaled
    shift = mu_to - mu_from
    lo = (scaled - 1) << shift
    hi = scaled << shift
    dp = p.derivative()

    # Endpoint signs on the fine grid.
    ev_p = ScaledEvaluator(p, mu_to)
    ev_dp = ScaledEvaluator(dp, mu_to)

    def sign_plus(y: int) -> int:
        v = ev_p.eval(y, counter)
        if v != 0:
            return 1 if v > 0 else -1
        dv = ev_dp.eval(y, counter)
        if dv == 0:
            raise ArithmeticError("p and p' vanish together")
        return 1 if dv > 0 else -1

    sigma_a = sign_plus(lo)
    if sign_plus(hi) == sigma_a:
        raise ValueError(
            "bracket does not isolate a root — was the approximation "
            "produced at a different precision, or is the cell shared "
            "by several roots?"
        )
    solver = HybridSolver(p, dp, mu_to, counter=counter, stats=stats)
    return solver.solve(lo, hi, sigma_a)


def refine_result(
    result: RootResult,
    p: IntPoly,
    mu_to: int,
    counter: CostCounter = NULL_COUNTER,
) -> RootResult:
    """Refine every root of a :class:`RootResult` to precision ``mu_to``.

    Cells shared by several near-identical roots (possible when the
    original ``mu`` could not separate them) are re-separated by
    re-running the finder on the square-free part restricted to... — in
    practice we simply detect the situation and fall back to a fresh
    full run at ``mu_to``, which is always correct.
    """
    from repro.core.rootfinder import RealRootFinder

    if mu_to < result.mu:
        raise ValueError("mu_to must be >= the result's precision")
    if len(set(result.scaled)) != len(result.scaled):
        finder = RealRootFinder(mu_bits=mu_to, counter=counter)
        return finder.find_roots(p)

    sf = p if result.degree == result.square_free_degree else square_free_part(p)
    if sf.leading_coefficient < 0:
        sf = -sf
    stats = IntervalStats()
    new_scaled = [
        refine_root(sf, s, result.mu, mu_to, counter, stats)
        for s in result.scaled
    ]
    return RootResult(
        mu=mu_to,
        scaled=new_scaled,
        multiplicities=list(result.multiplicities),
        degree=result.degree,
        square_free_degree=result.square_free_degree,
        counter=counter,
        stats=stats,
        elapsed_seconds=0.0,
    )
