"""The paper's primary contribution: remainder sequence, interleaving
tree, interval problems, and the end-to-end root finder."""

from repro.core.remainder import (
    RemainderSequence,
    compute_remainder_sequence,
    NotSquareFreeError,
)
from repro.core.tree import InterleavingTree, TreeNode
from repro.core.interval import IntervalProblemSolver, IntervalStats
from repro.core.sieve import HybridSolver, bisection_budget
from repro.core.rootfinder import RealRootFinder, RootResult
from repro.core.refine import refine_root, refine_result
from repro.core.isolate import IsolatingInterval, isolate_real_roots
from repro.core.scaling import digits_to_bits

__all__ = [
    "RemainderSequence",
    "compute_remainder_sequence",
    "NotSquareFreeError",
    "InterleavingTree",
    "TreeNode",
    "IntervalProblemSolver",
    "IntervalStats",
    "HybridSolver",
    "bisection_budget",
    "RealRootFinder",
    "RootResult",
    "refine_root",
    "refine_result",
    "IsolatingInterval",
    "isolate_real_roots",
    "digits_to_bits",
]
