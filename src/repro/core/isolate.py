"""Exact root isolation as a public API (the paper's Stage I).

Downstream users often need *isolating intervals* — disjoint rational
intervals each containing exactly one distinct real root — rather than
fixed-precision approximations.  This module drives the main algorithm
at increasing precision until every root lands in its own grid cell,
then returns the certified cells.

Each returned interval is half-open ``(lo, hi]`` with dyadic rational
endpoints and contains exactly one distinct root of the input (of the
reported multiplicity).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.rootfinder import RealRootFinder
from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.poly.dense import IntPoly

__all__ = ["IsolatingInterval", "isolate_real_roots"]


@dataclass(frozen=True)
class IsolatingInterval:
    """A half-open dyadic interval ``(lo, hi]`` with exactly one distinct
    root of the queried polynomial inside."""

    lo: Fraction
    hi: Fraction
    multiplicity: int

    @property
    def width(self) -> Fraction:
        return self.hi - self.lo

    @property
    def midpoint(self) -> Fraction:
        return (self.lo + self.hi) / 2

    def __contains__(self, x: "Fraction | int | float") -> bool:
        return self.lo < x <= self.hi


def isolate_real_roots(
    p: IntPoly,
    initial_mu: int = 8,
    max_mu: int = 1 << 20,
    counter: CostCounter = NULL_COUNTER,
) -> list[IsolatingInterval]:
    """Return disjoint isolating intervals for all distinct real roots.

    Runs the mu-approximation algorithm, doubling ``mu`` until all
    approximations are distinct (distinct roots must eventually
    separate: their minimal distance is positive).  ``max_mu`` bounds
    the search as a safety net for adversarially close roots; hitting
    it raises ``RuntimeError`` (with integer coefficients the root
    separation bound guarantees termination long before ``2^20`` bits
    for any practical input).
    """
    if p.is_zero():
        raise ValueError("the zero polynomial has every number as a root")
    if p.degree == 0:
        return []

    mu = max(1, initial_mu)
    while True:
        finder = RealRootFinder(mu_bits=mu, counter=counter)
        result = finder.find_roots(p)
        if len(set(result.scaled)) == len(result.scaled):
            denom = 1 << mu
            return [
                IsolatingInterval(
                    lo=Fraction(s - 1, denom),
                    hi=Fraction(s, denom),
                    multiplicity=m,
                )
                for s, m in zip(result.scaled, result.multiplicities)
            ]
        if mu >= max_mu:
            raise RuntimeError(
                f"roots not separated at mu = {mu} bits — adversarial input?"
            )
        mu *= 2
