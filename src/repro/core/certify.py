"""Exact a-posteriori certification of computed root approximations.

Independent of the algorithm under test, :func:`certify_roots` proves,
using only integer sign evaluations of a Sturm chain, that a claimed
result is correct:

* the input polynomial has exactly ``len(result)`` distinct real roots
  (counted with the returned multiplicities summing to the degree);
* each grid cell ``(v - 2**-mu, v]`` claimed by the result contains
  exactly as many distinct roots as the result claims for value ``v``.

Endpoint degeneracies (a chain member vanishing at a probe point) are
resolved by refining the probe grid — probe points are moved to
midpoints at precision ``mu + g`` for growing guard ``g``, which
terminates because the chain has finitely many roots.
"""

from __future__ import annotations

from collections import Counter

from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.poly.dense import IntPoly
from repro.poly.eval import scaled_eval
from repro.poly.gcd import square_free_part
from repro.poly.sturm import (
    sign_variations,
    sturm_chain,
    variations_at_neg_inf,
    variations_at_pos_inf,
)

__all__ = ["CertificationError", "certify_roots"]


class CertificationError(AssertionError):
    """The claimed result failed an exact check."""


def _sign_right_limit(
    q: IntPoly, y: int, mu: int, counter: CostCounter
) -> int:
    """Exact ``sign(q(t))`` as ``t -> (y/2**mu)+``.

    If ``q`` vanishes at the point, the limit sign is the sign of the
    first non-vanishing derivative there (Taylor expansion: all signs
    of ``(t - y)^k`` are positive from the right).  This is exact — no
    epsilon probing, no separation assumptions.
    """
    cur = q
    while not cur.is_zero():
        v = scaled_eval(cur, y, mu, counter)
        if v != 0:
            return 1 if v > 0 else -1
        cur = cur.derivative()
    return 0


def _variations_right_limit(
    chain: list[IntPoly], y: int, mu: int, counter: CostCounter
) -> int:
    """Sign variations of the chain just right of ``y / 2**mu``, exact."""
    return sign_variations(
        [_sign_right_limit(q, y, mu, counter) for q in chain]
    )


def certify_roots(
    p: IntPoly,
    scaled: list[int],
    multiplicities: list[int] | None,
    mu: int,
    counter: CostCounter = NULL_COUNTER,
    *,
    partial: bool = False,
) -> None:
    """Raise :class:`CertificationError` unless the result is correct.

    ``scaled``/``multiplicities`` follow the
    :class:`repro.core.rootfinder.RootResult` conventions: ascending
    ``ceil(2**mu * x)`` values for the distinct roots, multiplicities
    summing to ``deg(p)``.

    With ``partial=True`` (the shape of
    :class:`repro.resilience.budget.PartialResult` — a budget-bounded
    run cut short) the claim is weaker and the checks match: ``scaled``
    is *some prefix-by-count subset* of the distinct real roots, so the
    completeness checks (distinct-count equality, multiplicity sum) are
    skipped — ``multiplicities`` may be ``None`` — while every claimed
    cell is still certified to hold exactly the claimed number of
    distinct roots, and the claim may not exceed the true distinct
    count.  A wrong root in a partial result still fails loudly.
    """
    if p.is_zero():
        raise CertificationError("zero polynomial")
    if multiplicities is None:
        if not partial:
            raise CertificationError(
                "multiplicities required for a full certification"
            )
    elif len(scaled) != len(multiplicities):
        raise CertificationError("scaled/multiplicity length mismatch")
    if sorted(scaled) != list(scaled):
        raise CertificationError("approximations not ascending")
    if not partial and sum(multiplicities) != p.degree:
        raise CertificationError(
            f"multiplicities sum to {sum(multiplicities)}, degree is {p.degree}"
        )

    sf = square_free_part(p, counter)
    chain = sturm_chain(sf, counter)
    n_distinct = variations_at_neg_inf(chain) - variations_at_pos_inf(chain)
    if partial:
        if len(scaled) > n_distinct:
            raise CertificationError(
                f"partial result claims {len(scaled)} distinct roots, "
                f"Sturm says only {n_distinct} exist"
            )
    elif n_distinct != len(scaled):
        raise CertificationError(
            f"claimed {len(scaled)} distinct roots, Sturm says {n_distinct}"
        )

    # Count distinct roots per claimed cell (v-1, v] in grid units.  Equal
    # approximations share a cell; group them.
    cells = Counter(scaled)
    for v, claimed in cells.items():
        va = _variations_right_limit(chain, v - 1, mu, counter)
        vb = _variations_right_limit(chain, v, mu, counter)
        got = va - vb
        if got != claimed:
            raise CertificationError(
                f"cell ({v - 1}, {v}] * 2^-{mu} claims {claimed} distinct "
                f"roots, Sturm counts {got}"
            )

    # Multiplicity check: p / sf has each root with multiplicity m_k - 1;
    # verify total degrees only (cheap, exact): done via the sum check
    # above plus the distinct-count equality.  Per-root multiplicities
    # are validated against Yun's decomposition by the caller's tests.
