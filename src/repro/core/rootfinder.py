"""End-to-end root approximation (the paper's whole algorithm).

:class:`RealRootFinder` wires together the remainder sequence
(Section 2.1/3.1), the interleaving tree (Section 2.1/3.2), and the
interval problems (Section 2.2) into the public API:

    >>> from repro import RealRootFinder, IntPoly
    >>> finder = RealRootFinder(mu_bits=16)
    >>> result = finder.find_roots(IntPoly.from_roots([-3, 0, 2]))
    >>> result.as_floats()
    [-3.0, 0.0, 2.0]

Inputs with repeated roots are handled by the square-free reduction
described in DESIGN.md (the paper's Section 2.3 sketch, realized through
its own gcd ``F_{n*}``): distinct roots come from the square-free part,
multiplicities from Yun's decomposition, each factor's roots being
cross-checked against the main run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction

from repro.costmodel.backend import (
    ArithmeticBackend,
    counter_for,
    null_counter_for,
    resolve_backend,
)
from repro.costmodel.counter import CostCounter, NullCounter
from repro.obs.trace import NULL_TRACER, Tracer
from repro.core.interval import IntervalProblemSolver, solve_linear_scaled
from repro.core.remainder import (
    NotSquareFreeError,
    RemainderSequence,
    compute_remainder_sequence,
)
from repro.core.scaling import digits_to_bits, scaled_to_float
from repro.core.sieve import STRATEGIES, IntervalStats
from repro.core.tree import InterleavingTree
from repro.poly.dense import IntPoly
from repro.poly.gcd import square_free_decomposition
from repro.poly.roots_bounds import root_bound_bits
from repro.resilience.budget import Budget

__all__ = ["RealRootFinder", "RootResult", "merge_sorted"]

PHASE_SORT = "tree.sort"


def merge_sorted(a: list[int], b: list[int]) -> list[int]:
    """Merge two ascending lists — the body of a SORT task (Section 3.2)."""
    out: list[int] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] <= b[j]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


@dataclass
class RootResult:
    """All distinct real roots of the input, mu-approximated.

    ``scaled[k]`` is ``ceil(2**mu * x_k)`` for the ascending distinct
    roots ``x_k``; ``multiplicities[k]`` is the multiplicity of ``x_k``
    in the original input.
    """

    mu: int
    scaled: list[int]
    multiplicities: list[int]
    degree: int
    square_free_degree: int
    counter: CostCounter
    stats: IntervalStats
    elapsed_seconds: float
    tree: InterleavingTree | None = field(default=None, repr=False)
    sequence: RemainderSequence | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.scaled)

    def as_floats(self) -> list[float]:
        return [scaled_to_float(s, self.mu) for s in self.scaled]

    def as_fractions(self) -> list[Fraction]:
        return [Fraction(s, 1 << self.mu) for s in self.scaled]

    def error_bound(self) -> Fraction:
        """Every true root ``x_k`` satisfies
        ``approx - error_bound < x_k <= approx``."""
        return Fraction(1, 1 << self.mu)


class RealRootFinder:
    """Approximates all real roots of an all-real-roots integer polynomial.

    Parameters
    ----------
    mu_bits:
        Output precision: approximations are exact ceilings on the
        ``2**-mu_bits`` grid.  Use :func:`mu_digits`-style conversion via
        ``RealRootFinder.from_digits`` for the paper's decimal-digit
        parameter.
    check_tree:
        Assert Theorem 1's degree/sign conclusions at every tree node
        (cheap insurance; on by default).
    keep_structures:
        Attach the remainder sequence and tree to the result for
        inspection/benchmarks.
    strategy:
        Interval-solver strategy: ``"hybrid"`` (the paper's sieve /
        bisection / Newton method, default), ``"bisection"`` (classical
        binary search, cost linear in mu), or ``"newton"`` (guarded
        Newton without the warm-up phases).  All three are exact; see
        :class:`repro.core.sieve.HybridSolver`.
    tracer:
        Observability hook (:class:`repro.obs.trace.Tracer`): records
        hierarchical wall-time/bit-cost spans for every phase and
        structured interval-case events.  Defaults to the zero-overhead
        :data:`repro.obs.trace.NULL_TRACER`.
    budget:
        Optional :class:`repro.resilience.budget.Budget` bounding a
        :meth:`find_roots` call by wall-clock deadline and/or bit-cost
        ceiling.  Checked cooperatively at phase boundaries and between
        top-level interval problems; an overrun raises
        :class:`repro.resilience.budget.BudgetExceeded` whose
        ``partial`` carries the (certified-root-compatible, ascending)
        approximations already completed.  The bit axis reads this
        finder's ``counter``; one is created automatically if a bit
        ceiling is set without a counter.
    backend:
        Arithmetic backend name (``"python"``/``"gmpy2"``/``"mpint"``/
        ``"auto"``) or an :class:`~repro.costmodel.backend
        .ArithmeticBackend`.  When no explicit ``counter`` is given, the
        finder's counter computes on this backend (uncharged unless a
        budget needs charging); an explicit ``counter`` wins — build it
        with :func:`repro.costmodel.counter_for` to combine both.  See
        docs/BACKENDS.md.
    """

    def __init__(
        self,
        mu_bits: int = 32,
        *,
        check_tree: bool = True,
        keep_structures: bool = False,
        counter: CostCounter | None = None,
        strategy: str = "hybrid",
        tracer: Tracer | None = None,
        budget: Budget | None = None,
        backend: "str | ArithmeticBackend | None" = None,
    ):
        if mu_bits < 1:
            raise ValueError("mu_bits must be >= 1")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; known: {list(STRATEGIES)}"
            )
        self.mu = mu_bits
        self.check_tree = check_tree
        self.keep_structures = keep_structures
        resolved = resolve_backend(backend)
        self.backend = resolved.name
        if counter is not None:
            self.counter = counter
        else:
            self.counter = null_counter_for(resolved)
        self.strategy = strategy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.budget = budget
        if (budget is not None and budget.max_bit_ops is not None
                and isinstance(self.counter, NullCounter)):
            # The bit ceiling needs a real counter to read.
            self.counter = counter_for(resolved)

    @classmethod
    def from_digits(cls, mu_digits: int, **kwargs) -> "RealRootFinder":
        """Construct with precision given in decimal digits (paper's mu)."""
        return cls(mu_bits=digits_to_bits(mu_digits), **kwargs)

    # -- public API ---------------------------------------------------------
    def find_roots(self, p: IntPoly) -> RootResult:
        """Compute mu-approximations of all distinct real roots of ``p``.

        ``p`` must be a nonzero integer polynomial all of whose complex
        roots are real; a :class:`repro.core.remainder.NotRealRootedError`
        is raised otherwise (the structure checks detect it exactly).
        """
        t0 = time.perf_counter()
        if p.is_zero():
            raise ValueError("the zero polynomial has every number as a root")
        if p.leading_coefficient < 0:
            p = -p
        if p.degree == 0:
            return RootResult(
                mu=self.mu, scaled=[], multiplicities=[], degree=0,
                square_free_degree=0, counter=self.counter,
                stats=IntervalStats(),
                elapsed_seconds=time.perf_counter() - t0,
            )

        stats = IntervalStats()
        budget = self.budget
        if budget is not None:
            budget.start(self.counter)
            budget.check(phase="remainder", mu=self.mu, degree=p.degree)
        with self.tracer.span(
            "find_roots", degree=p.degree, mu=self.mu, strategy=self.strategy
        ):
            try:
                seq = compute_remainder_sequence(p, self.counter, self.tracer)
            except NotSquareFreeError:
                return self._find_roots_with_multiplicity(p, stats, t0)

            scaled, tree = self._solve_square_free(p, seq, stats)
        return RootResult(
            mu=self.mu,
            scaled=scaled,
            multiplicities=[1] * len(scaled),
            degree=p.degree,
            square_free_degree=p.degree,
            counter=self.counter,
            stats=stats,
            elapsed_seconds=time.perf_counter() - t0,
            tree=tree if self.keep_structures else None,
            sequence=seq if self.keep_structures else None,
        )

    # -- square-free main path ------------------------------------------------
    def _solve_square_free(
        self,
        p: IntPoly,
        seq: RemainderSequence,
        stats: IntervalStats,
        partial_base: list[int] | None = None,
    ) -> tuple[list[int], InterleavingTree]:
        """Solve one square-free polynomial through the full pipeline.

        ``partial_base`` (multiplicity path only) is the ascending list
        of already-certified roots of the *original* input from earlier
        Yun factors; budget overruns report it merged with whatever
        this factor has completed.
        """
        counter = self.counter
        tracer = self.tracer
        budget = self.budget
        base = partial_base or []
        if p.degree == 1:
            return [solve_linear_scaled(p, self.mu)], InterleavingTree(seq)

        if budget is not None:
            budget.check(scaled=base, phase="tree", mu=self.mu,
                         degree=p.degree)
        tree = InterleavingTree(seq)
        with tracer.span("tree.compute_polynomials", phase="tree",
                         degree=p.degree):
            tree.compute_polynomials(counter, check=self.check_tree,
                                     tracer=tracer)
        r_bits = root_bound_bits(p)

        for node in tree.nodes_postorder():
            if node.is_empty:
                node.roots_scaled = []
                continue
            poly = node.poly
            assert poly is not None
            if node.degree == 1:
                node.roots_scaled = [solve_linear_scaled(poly, self.mu)]
                continue
            assert node.left is not None and node.right is not None
            if budget is not None:
                # Intermediate nodes' gap results are roots of remainder-
                # sequence polynomials, not of p — only the root node's
                # completed gaps are reportable partial roots.
                budget.check(scaled=base, phase="interval", mu=self.mu,
                             degree=p.degree)
            with tracer.span("node.intervals", phase="interval",
                             i=node.i, j=node.j, level=node.level,
                             degree=node.degree):
                with counter.phase(PHASE_SORT):
                    inter = merge_sorted(
                        node.left.roots_scaled or [],
                        node.right.roots_scaled or [],
                    )
                solver = IntervalProblemSolver(
                    poly, self.mu, r_bits, counter, stats,
                    strategy=self.strategy, tracer=tracer,
                    label=f"[{node.i},{node.j}]",
                )
                if budget is not None and node is tree.root:
                    # Budget-aware rendering of ``solver.solve_all``:
                    # identical operations in identical order (so the
                    # answer is bit-identical), with a cooperative check
                    # between gaps — each completed gap here is one more
                    # certified root of p available as a partial result.
                    ys = [-solver.sentinel] + inter + [solver.sentinel]
                    sg = solver.preinterval_signs(ys)
                    s_inf = poly.sign_at_neg_inf()
                    out: list[int] = []
                    for g in range(node.degree):
                        budget.check(
                            scaled=merge_sorted(base, out),
                            phase="interval.gap", mu=self.mu, degree=p.degree,
                        )
                        out.append(solver.solve_gap(
                            g, ys[g], ys[g + 1], sg[g], sg[g + 1], s_inf
                        ))
                    node.roots_scaled = out
                else:
                    node.roots_scaled = solver.solve_all(inter)

        assert tree.root.roots_scaled is not None
        return tree.root.roots_scaled, tree

    # -- repeated-roots path ---------------------------------------------------
    def _find_roots_with_multiplicity(
        self, p: IntPoly, stats: IntervalStats, t0: float
    ) -> RootResult:
        budget = self.budget
        if budget is not None:
            budget.check(phase="square_free", mu=self.mu, degree=p.degree)
        with self.tracer.span("square_free_decomposition", phase="remainder",
                              degree=p.degree):
            factors = square_free_decomposition(p, self.counter)
        # Distinct roots: solve each square-free Yun factor and merge.
        # (The product of the factors *is* the square-free part; solving
        # them separately also yields the multiplicities exactly.)
        pairs: list[tuple[int, int]] = []
        sf_degree = 0
        tree = None
        seq = None
        for fac, m in factors:
            sf_degree += fac.degree
            if fac.degree == 0:
                continue
            # Roots of every Yun factor are roots of p, so the sorted
            # accumulation so far is a reportable partial result.
            base = sorted(s for s, _ in pairs)
            if budget is not None:
                budget.check(scaled=base, phase="square_free.factor",
                             mu=self.mu, degree=p.degree)
            with self.tracer.span("factor", degree=fac.degree, multiplicity=m):
                sub_seq = compute_remainder_sequence(
                    fac, self.counter, self.tracer
                )
                scaled, sub_tree = self._solve_square_free(
                    fac, sub_seq, stats, partial_base=base
                )
            pairs.extend((s, m) for s in scaled)
            if tree is None:
                tree, seq = sub_tree, sub_seq
        pairs.sort()
        return RootResult(
            mu=self.mu,
            scaled=[s for s, _ in pairs],
            multiplicities=[m for _, m in pairs],
            degree=p.degree,
            square_free_degree=sf_degree,
            counter=self.counter,
            stats=stats,
            elapsed_seconds=time.perf_counter() - t0,
            tree=tree if self.keep_structures else None,
            sequence=seq if self.keep_structures else None,
        )
