"""The dismissed alternative: tree polynomials via prefix products.

The paper's introduction says of the Ben-Or-Tiwari NC formulation:
"We have not, however, implemented the NC version, which, although
theoretically efficient, is impractical due to the overheads associated
with its fine-grained parallelism."  The NC-style way to obtain the
tree polynomials is *direct*: compute the cofactor sequences
``A_i, B_i`` from the prefix products ``S_i ... S_1`` (paper Eqs. 3-4)
and read off every node polynomial from

    P_{i,j} = A_{i-1} B_{j+1} - A_{j+1} B_{i-1}        (Eq. 5)

instead of combining children's T-matrices bottom-up (Eq. 9).

This module implements that alternative exactly (integer arithmetic via
the scaled prefixes), so the reproduction can *measure* the paper's
dismissal: the direct method multiplies full-size cofactor polynomials
at every node — its bit cost is a factor ~n worse than the tree combine
(see ``bench_ablation_prefix``), which is precisely the kind of
overhead that made the NC version unattractive in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.remainder import RemainderSequence
from repro.core.tree import split_index
from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.poly.dense import IntPoly

__all__ = ["CofactorSequences", "compute_cofactors", "tree_polys_via_cofactors"]


@dataclass
class CofactorSequences:
    """The integer cofactor polynomials of paper Eq. (4).

    ``A[i]``, ``B[i]`` for ``0 <= i <= n`` satisfy
    ``F_i = A_i F_0 + B_i F_1`` with ``A_0 = 1, B_0 = 0, A_1 = 0,
    B_1 = 1``.
    """

    n: int
    A: list[IntPoly]
    B: list[IntPoly]


def compute_cofactors(
    seq: RemainderSequence, counter: CostCounter = NULL_COUNTER
) -> CofactorSequences:
    """Compute all ``A_i, B_i`` by the scaled prefix recurrence.

    Using the integer matrices ``U_i = c_{i-1}^2 S_i``:

        (A_{i+1}, B_{i+1}) = ( -c_i^2 A_{i-1} + Q_i A_i ) / c_{i-1}^2 ...

    i.e. the same second-order recurrence as the ``F_i`` themselves,
    which keeps every intermediate integral (Collins).
    """
    n = seq.n
    A = [IntPoly.one(), IntPoly.zero()]
    B = [IntPoly.zero(), IntPoly.one()]
    with counter.phase("prefix"):
        for i in range(1, n):
            q = seq.quotient(i)
            ci_sq = counter.mul(seq.c[i], seq.c[i])
            divisor = 1 if i == 1 else seq.c[i - 1] * seq.c[i - 1]
            a_next = q.mul(A[i], counter) - A[i - 1].scale(ci_sq, counter)
            b_next = q.mul(B[i], counter) - B[i - 1].scale(ci_sq, counter)
            if divisor != 1:
                a_next = a_next.exact_div_scalar(divisor, counter)
                b_next = b_next.exact_div_scalar(divisor, counter)
            A.append(a_next)
            B.append(b_next)
    return CofactorSequences(n=n, A=A, B=B)


def tree_polys_via_cofactors(
    seq: RemainderSequence,
    cof: CofactorSequences | None = None,
    counter: CostCounter = NULL_COUNTER,
) -> dict[tuple[int, int], IntPoly]:
    """Every tree node's polynomial from Eq. (5) directly.

    Returns ``{(i, j): P_{i,j}}`` for the same balanced tree the main
    implementation builds.  Rightmost nodes still come free from the
    remainder sequence; everything else costs two full-size polynomial
    products — the measured impracticality.
    """
    if cof is None:
        cof = compute_cofactors(seq, counter)
    n = seq.n
    out: dict[tuple[int, int], IntPoly] = {}

    def p_direct(i: int, j: int) -> IntPoly:
        # Eq. (5): P_{i,j} = A_{i-1} B_{j+1} - A_{j+1} B_{i-1}
        with counter.phase("prefix.eq5"):
            return cof.A[i - 1].mul(cof.B[j + 1], counter) - cof.A[j + 1].mul(
                cof.B[i - 1], counter
            )

    def visit(i: int, j: int) -> None:
        if j < i:
            return
        if j == n:
            out[(i, j)] = seq.F[i - 1]
        else:
            out[(i, j)] = p_direct(i, j)
        if j > i:
            k = split_index(i, j)
            visit(i, k - 1)
            visit(k + 1, j)

    visit(1, n)
    return out
