"""Task-granular construction of the whole algorithm (paper Section 3).

:func:`build_task_graph` decomposes one root-finding run into the exact
task structure of the paper's parallel implementation:

* **Remainder phase** (Section 3.1): iteration ``i`` computes ``Q_i``
  and ``F_{i+1}`` as scalar-grain tasks — for each coefficient ``j``,
  three multiplication tasks, one addition task and one division task
  (the paper's ``5(n-i)`` tasks), plus the ``q_{i,1}/q_{i,0}/c_i^2``
  head tasks.  Dependencies are at coefficient granularity, which is
  what lets iteration ``i+1`` start on low coefficients while iteration
  ``i`` is still finishing high ones (software pipelining across the
  otherwise serial recurrence).
* **Tree phase** (Section 3.2, Fig. 3.2): RECURSE initialization tasks
  top-down, then per node: the two 2x2 matrix products split into four
  entry tasks each (COMPUTEPOLY), a scaling/division task, a SORT task
  merging children's roots, one PREINTERVAL task per interleaving
  point, and one INTERVAL task per root.

Executing the graph (``graph.run_recorded(counter)``) performs the real
computation — the produced roots are bit-identical to
:class:`repro.core.rootfinder.RealRootFinder` — while recording each
task's bit cost for the multiprocessor simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.core.interval import IntervalProblemSolver, solve_linear_scaled
from repro.core.sieve import IntervalStats
from repro.core.tree import TreeNode, split_index
from repro.poly.dense import IntPoly
from repro.poly.matrix import PolyMatrix2x2
from repro.poly.roots_bounds import root_bound_bits
from repro.sched.graph import TaskGraph
from repro.sched.task import TaskKind

__all__ = [
    "build_task_graph",
    "TaskGraphResult",
    "NodePlan",
    "build_interval_plan",
]


@dataclass(frozen=True)
class NodePlan:
    """Picklable description of one tree node's interval-stage work.

    The real executor (:mod:`repro.sched.executor`) consumes a list of
    these instead of the closure-based :class:`TaskGraph` (closures do
    not cross process boundaries): same PREINTERVAL/INTERVAL task
    granularity, same node-level dependencies, but every field is plain
    data that pickles into a pool worker.

    ``coeffs`` is the canonical coefficient tuple, but the executor does
    *not* re-pickle it into each of the node's ``2*degree + 1`` task
    payloads: it is interned once per node as a pre-pickled
    ``(poly_key, blob)`` reference
    (:func:`repro.sched.executor.intern_coeffs`) that workers unpickle
    at most once each (content-addressed by the same sha256 ``poly_key``
    the checkpoint/result-cache layers use).
    """

    #: the tree node's ``(i, j)`` label.
    label: tuple[int, int]
    #: coefficients of ``P_{i,j}``, low to high.
    coeffs: tuple[int, ...]
    #: number of roots ``L`` of this node (= number of INTERVAL tasks).
    degree: int
    #: ``sign(P_{i,j}(-inf))`` — the parity anchor of Section 2.2.
    sign_at_neg_inf: int
    #: labels of the non-empty children whose roots interleave ours
    #: (empty children contribute no roots and no dependency).
    children: tuple[tuple[int, int], ...]

    # -- logical task identities ----------------------------------------
    # The executor keys retries, deduplication of late/stale results,
    # and per-node degradation by *logical* task, not by submission
    # attempt: one PREINTERVAL key per interleaving point, one INTERVAL
    # key per gap.
    def sign_task(self, t: int) -> tuple[str, tuple[int, int], int]:
        """Logical key of this node's PREINTERVAL task ``t``
        (``0 <= t <= degree``)."""
        return ("sign", self.label, t)

    def gap_task(self, gap: int) -> tuple[str, tuple[int, int], int]:
        """Logical key of this node's INTERVAL task ``gap``
        (``0 <= gap < degree``)."""
        return ("gap", self.label, gap)

    @property
    def n_tasks(self) -> int:
        """Pool tasks this node contributes: ``degree + 1`` endpoint
        signs plus ``degree`` gap solves (0 for in-parent linear
        nodes)."""
        return 0 if self.degree == 1 else 2 * self.degree + 1


def build_interval_plan(tree) -> list[NodePlan]:
    """Flatten a computed :class:`~repro.core.tree.InterleavingTree`
    into postorder :class:`NodePlan` records (non-empty nodes only).

    The node polynomials must already be computed
    (:meth:`InterleavingTree.compute_polynomials`); raises
    :class:`ValueError` otherwise.  The last entry is always the root,
    and every node's children precede it — the dependency-driven
    dispatch order of the executor.
    """
    plan: list[NodePlan] = []
    for node in tree.nodes_postorder():
        if node.is_empty:
            continue
        poly = node.poly
        if poly is None:
            raise ValueError(
                "tree polynomials not computed; call compute_polynomials first"
            )
        children = tuple(
            child.label
            for child in (node.left, node.right)
            if child is not None and not child.is_empty
        )
        plan.append(
            NodePlan(
                label=node.label,
                coeffs=tuple(poly.coeffs),
                degree=node.degree,
                sign_at_neg_inf=poly.sign_at_neg_inf(),
                children=children,
            )
        )
    return plan


@dataclass
class _NodeState:
    node: TreeNode
    matrix: PolyMatrix2x2 | None = None
    poly: IntPoly | None = None
    m1: dict[tuple[int, int], IntPoly] = field(default_factory=dict)
    m2: dict[tuple[int, int], IntPoly] = field(default_factory=dict)
    inter: list[int] | None = None       # merged interleaving points
    signs: list[int] | None = None       # just-right-of signs incl. sentinels
    roots: list[int | None] | None = None
    solver: IntervalProblemSolver | None = None
    poly_ready: int = -1                 # task id after which .poly is set
    roots_ready: tuple[int, ...] = ()    # task ids producing all roots


@dataclass
class TaskGraphResult:
    """The graph plus handles to read the final answer after execution."""

    graph: TaskGraph
    n: int
    mu: int
    stats: IntervalStats
    _root_state: _NodeState

    def roots_scaled(self) -> list[int]:
        if not self.graph.executed:
            raise RuntimeError("execute the graph first (run_recorded)")
        roots = self._root_state.roots
        assert roots is not None and all(r is not None for r in roots)
        return [r for r in roots if r is not None]


def build_task_graph(
    p: IntPoly,
    mu: int,
    counter: CostCounter = NULL_COUNTER,
    sequential_remainder: bool = False,
) -> TaskGraphResult:
    """Build the full task DAG for one run on square-free input ``p``.

    The graph computes nothing at build time; call
    ``result.graph.run_recorded(counter)`` to execute and record costs.
    A non-square-free input surfaces as
    :class:`~repro.core.remainder.NotSquareFreeError`-style arithmetic
    failure during execution (benches only use square-free inputs, as
    did the paper's).

    ``sequential_remainder`` reproduces the paper's run-time option of
    executing the precomputation stage sequentially (Section 3): every
    remainder-phase task is chained to its predecessor, removing the
    phase's wavefront parallelism (the remainder-parallelism ablation
    bench quantifies the difference).
    """
    if p.is_zero() or p.degree < 1:
        raise ValueError("need a nonconstant polynomial")
    if p.leading_coefficient < 0:
        p = -p
    n = p.degree
    g = TaskGraph()
    stats = IntervalStats()
    r_bits = root_bound_bits(p)

    # ---------------- remainder phase (Section 3.1) ----------------
    # State: coefficient values f[i][j] and the producing task ids.
    f: list[list[int]] = [list(p.coeffs)] + [
        [0] * (n - i + 1) for i in range(1, n + 1)
    ]
    coeff_task: list[list[int]] = []
    q0_val: list[int] = [0] * n
    q1_val: list[int] = [0] * n
    csq_val: list[int] = [0] * (n + 1)
    q0_tid: list[int] = [-1] * n
    q1_tid: list[int] = [-1] * n
    csq_tid: list[int] = [-1] * (n + 1)

    _last_rem = [-1]

    def add_rem(kind, body, deps=(), label=""):
        """Add a remainder-phase task, chaining when sequential mode is on."""
        d = list(deps)
        if sequential_remainder and _last_rem[0] >= 0:
            d.append(_last_rem[0])
        tid = g.add(kind, body, deps=d, label=label, phase="remainder")
        _last_rem[0] = tid
        return tid

    init0 = add_rem(TaskKind.RECURSE, lambda: None, label="init.F0")
    coeff_task.append([init0] * (n + 1))

    def _deriv_body() -> None:
        d = p.derivative(counter)
        f[1][:] = list(d.coeffs) + [0] * (n - len(d.coeffs))

    deriv = add_rem(TaskKind.REM_MUL, _deriv_body, deps=[init0],
                    label="init.F1")
    coeff_task.append([deriv] * n)

    def _make_q_bodies(i: int):
        # q_{i,1} = f_{i-1, n-i+1} * f_{i, n-i}      (Eq. 15/16)
        def q1_body() -> None:
            q1_val[i] = counter.mul(f[i - 1][n - i + 1], f[i][n - i])

        # q_{i,0} = f_{i,n-i} f_{i-1,n-i} - f_{i,n-i-1} f_{i-1,n-i+1} (Eq. 17)
        def q0_body() -> None:
            a = counter.mul(f[i][n - i], f[i - 1][n - i])
            b = counter.mul(
                f[i][n - i - 1] if n - i - 1 >= 0 else 0, f[i - 1][n - i + 1]
            )
            q0_val[i] = counter.sub(a, b)

        def csq_body() -> None:
            lead = f[i][n - i]
            if lead == 0:
                # F_i lost its leading coefficient: the chain is not normal,
                # i.e. the input has repeated or non-real roots.  Fail fast
                # with the same diagnosis the sequential path gives.
                raise ArithmeticError(
                    f"remainder chain not normal at i={i}: input is not a "
                    "square-free real-rooted polynomial"
                )
            csq_val[i] = counter.mul(lead, lead)

        return q1_body, q0_body, csq_body

    for i in range(1, n):
        q1_body, q0_body, csq_body = _make_q_bodies(i)
        lead_prev = coeff_task[i - 1][n - i + 1]
        lead_cur = coeff_task[i][n - i]
        sub_cur = coeff_task[i][n - i - 1] if n - i - 1 >= 0 else lead_cur
        sub_prev = coeff_task[i - 1][n - i]
        q1_tid[i] = add_rem(TaskKind.REM_Q, q1_body,
                            deps=[lead_prev, lead_cur], label=f"q1[{i}]")
        q0_tid[i] = add_rem(TaskKind.REM_Q, q0_body,
                            deps=[lead_prev, lead_cur, sub_cur, sub_prev],
                            label=f"q0[{i}]")
        csq_tid[i] = add_rem(TaskKind.REM_Q, csq_body, deps=[lead_cur],
                             label=f"csq[{i}]")

        next_tasks: list[int] = []
        for j in range(0, n - i):
            ma_val = [0]
            mb_val = [0]
            mc_val = [0]
            t_val = [0]

            def mul_a(i=i, j=j, out=ma_val) -> None:
                out[0] = counter.mul(f[i][j], q0_val[i])

            def mul_b(i=i, j=j, out=mb_val) -> None:
                out[0] = counter.mul(f[i][j - 1] if j >= 1 else 0, q1_val[i])

            def mul_c(i=i, j=j, out=mc_val) -> None:
                out[0] = counter.mul(csq_val[i], f[i - 1][j])

            def add_body(a=ma_val, b=mb_val, c=mc_val, out=t_val) -> None:
                out[0] = counter.sub(counter.add(a[0], b[0]), c[0])

            def div_body(i=i, j=j, src=t_val) -> None:
                if i == 1:
                    f[i + 1][j] = src[0]
                    return
                q, r = counter.divmod(src[0], csq_val[i - 1])
                if r != 0:
                    raise ArithmeticError(
                        f"Collins integrality violated at i={i}, j={j} "
                        "(is the input square-free and real-rooted?)"
                    )
                f[i + 1][j] = q

            ta = add_rem(TaskKind.REM_MUL, mul_a,
                         deps=[coeff_task[i][j], q0_tid[i]],
                         label=f"mulA[{i},{j}]")
            tb_deps = [q1_tid[i]] + ([coeff_task[i][j - 1]] if j >= 1 else [])
            tb = add_rem(TaskKind.REM_MUL, mul_b, deps=tb_deps,
                         label=f"mulB[{i},{j}]")
            tc = add_rem(TaskKind.REM_MUL, mul_c,
                         deps=[csq_tid[i], coeff_task[i - 1][j]],
                         label=f"mulC[{i},{j}]")
            tadd = add_rem(TaskKind.REM_ADD, add_body, deps=[ta, tb, tc],
                           label=f"add[{i},{j}]")
            div_deps = [tadd] + ([csq_tid[i - 1]] if i >= 2 else [])
            tdiv = add_rem(TaskKind.REM_DIV, div_body, deps=div_deps,
                           label=f"div[{i},{j}]")
            next_tasks.append(tdiv)
        coeff_task.append(next_tasks)

    # ---------------- tree phase (Section 3.2) ----------------
    def build_structure(i: int, j: int, level: int) -> TreeNode:
        node = TreeNode(i=i, j=j, level=level)
        if j > i:
            k = split_index(i, j)
            node.left = build_structure(i, k - 1, level + 1)
            node.right = build_structure(k + 1, j, level + 1)
        return node

    root = build_structure(1, n, 0)
    states: dict[tuple[int, int], _NodeState] = {}

    # Top-down RECURSE tasks (structure/status initialization): cheap, but
    # they occupy queue slots and processors exactly as in the paper.
    recurse_tid: dict[tuple[int, int], int] = {}

    def add_recurse(node: TreeNode, parent_tid: int | None) -> None:
        deps = [parent_tid] if parent_tid is not None else []
        tid = g.add(TaskKind.RECURSE, lambda: None, deps=deps,
                    label=f"recurse[{node.i},{node.j}]", phase="tree")
        recurse_tid[node.label] = tid
        if node.left is not None:
            add_recurse(node.left, tid)
        if node.right is not None:
            add_recurse(node.right, tid)

    add_recurse(root, None)

    def u_matrix_now(k: int) -> PolyMatrix2x2:
        ck1_sq = 1 if k == 1 else csq_val[k - 1]
        return PolyMatrix2x2(
            IntPoly.zero(),
            IntPoly.constant(ck1_sq),
            IntPoly.constant(-csq_val[k]),
            IntPoly((q0_val[k], q1_val[k])),
        )

    def u_deps(k: int) -> list[int]:
        deps = [q0_tid[k], q1_tid[k], csq_tid[k]]
        if k >= 2:
            deps.append(csq_tid[k - 1])
        return deps

    def poly_from_f(i: int) -> IntPoly:
        # F_i as currently held in the coefficient table.
        return IntPoly(f[i])

    def add_node_tasks(node: TreeNode) -> _NodeState:
        st = _NodeState(node=node)
        states[node.label] = st
        i, j = node.i, node.j

        if node.is_empty:
            def empty_body(st=st, i=i) -> None:
                cc = 1 if i == 1 else csq_val[i - 1]
                st.matrix = PolyMatrix2x2.scalar(cc)
                st.poly = IntPoly.one()
            deps = [recurse_tid[node.label]] + (
                [csq_tid[i - 1]] if i >= 2 else []
            )
            tid = g.add(TaskKind.LEAFPOLY, empty_body, deps=deps,
                        label=f"empty[{i},{j}]", phase="tree")
            st.poly_ready = tid
            st.roots_ready = (tid,)
            st.roots = []
            return st

        if node.is_leaf and j < n:
            def leaf_body(st=st, i=i) -> None:
                st.matrix = u_matrix_now(i)
                st.poly = st.matrix.entry(2, 2)
            tid = g.add(TaskKind.LEAFPOLY, leaf_body,
                        deps=[recurse_tid[node.label]] + u_deps(i),
                        label=f"leafpoly[{i}]", phase="tree")
            st.poly_ready = tid
            _add_linroot(st, tid)
            return st

        if j == n:
            # Rightmost spine: adopt F_{i-1} once its coefficients exist.
            def spine_body(st=st, i=i) -> None:
                st.poly = poly_from_f(i - 1)
            tid = g.add(TaskKind.SPINEPOLY, spine_body,
                        deps=[recurse_tid[node.label]] + coeff_task[i - 1],
                        label=f"spinepoly[{i},{j}]", phase="tree")
            st.poly_ready = tid
            if node.is_leaf:  # [n, n]: F_{n-1} is linear
                _add_linroot(st, tid)
                return st
            left_st = add_node_tasks(node.left)   # type: ignore[arg-type]
            right_st = add_node_tasks(node.right)  # type: ignore[arg-type]
            _add_interval_tasks(st, left_st, right_st)
            return st

        # Interior, non-rightmost: COMPUTEPOLY via two split matrix products.
        left_st = add_node_tasks(node.left)    # type: ignore[arg-type]
        right_st = add_node_tasks(node.right)  # type: ignore[arg-type]
        k = node.pivot

        m1_tids: dict[tuple[int, int], int] = {}
        for r in (1, 2):
            for c in (1, 2):
                def m1_body(st=st, right_st=right_st, k=k, r=r, c=c) -> None:
                    assert right_st.matrix is not None
                    st.m1[(r, c)] = right_st.matrix.entry_product(
                        u_matrix_now(k), r, c, counter
                    )
                m1_tids[(r, c)] = g.add(
                    TaskKind.MATMUL, m1_body,
                    deps=[recurse_tid[node.label], right_st.poly_ready]
                    + u_deps(k),
                    label=f"m1[{i},{j}]({r},{c})", phase="tree",
                )

        # Second product's entry tasks also apply the exact division by
        # c_{k-1}^2 c_k^2 (Eq. 9) so the scaling parallelizes with the
        # same grain as the multiplications.
        m2_tids: dict[tuple[int, int], int] = {}
        for r in (1, 2):
            for c in (1, 2):
                def m2_body(st=st, left_st=left_st, k=k, r=r, c=c) -> None:
                    assert left_st.matrix is not None
                    a1 = st.m1[(r, 1)]
                    a2 = st.m1[(r, 2)]
                    lm = left_st.matrix
                    b1 = lm.entry(1, c)
                    b2 = lm.entry(2, c)
                    raw = a1.mul(b1, counter) + a2.mul(b2, counter)
                    ck1_sq = 1 if k == 1 else csq_val[k - 1]
                    st.m2[(r, c)] = raw.exact_div_scalar(
                        ck1_sq * csq_val[k], counter
                    )
                m2_deps = [m1_tids[(r, 1)], m1_tids[(r, 2)],
                           left_st.poly_ready, csq_tid[k]]
                if k >= 2:
                    m2_deps.append(csq_tid[k - 1])
                m2_tids[(r, c)] = g.add(
                    TaskKind.MATMUL, m2_body, deps=m2_deps,
                    label=f"m2[{i},{j}]({r},{c})", phase="tree",
                )

        def assemble_body(st=st) -> None:
            st.matrix = PolyMatrix2x2(
                st.m2[(1, 1)], st.m2[(1, 2)], st.m2[(2, 1)], st.m2[(2, 2)]
            )
            st.poly = st.matrix.entry(2, 2)
            st.m1.clear()
            st.m2.clear()

        tid = g.add(TaskKind.DIVSCALE, assemble_body,
                    deps=list(m2_tids.values()),
                    label=f"assemble[{i},{j}]", phase="tree")
        st.poly_ready = tid

        if node.degree == 1:
            _add_linroot(st, tid)
        else:
            _add_interval_tasks(st, left_st, right_st)
        return st

    def _add_linroot(st: _NodeState, poly_tid: int) -> None:
        st.roots = [None]

        def lin_body(st=st) -> None:
            assert st.poly is not None
            st.roots[0] = solve_linear_scaled(st.poly, mu)

        tid = g.add(TaskKind.LINROOT, lin_body, deps=[poly_tid],
                    label=f"linroot[{st.node.i},{st.node.j}]",
                    phase="interval")
        st.roots_ready = (tid,)

    def _add_interval_tasks(
        st: _NodeState, left_st: _NodeState, right_st: _NodeState
    ) -> None:
        L = st.node.degree
        st.roots = [None] * L
        sentinel = 1 << (r_bits + mu)

        def sort_body(st=st, left_st=left_st, right_st=right_st) -> None:
            from repro.core.rootfinder import merge_sorted
            a = [r for r in (left_st.roots or []) if r is not None]
            b = [r for r in (right_st.roots or []) if r is not None]
            st.inter = merge_sorted(a, b)
            st.signs = [0] * (L + 1)

        sort_tid = g.add(
            TaskKind.SORT, sort_body,
            deps=list(left_st.roots_ready) + list(right_st.roots_ready),
            label=f"sort[{st.node.i},{st.node.j}]", phase="tree.sort",
        )

        def get_solver(st=st) -> IntervalProblemSolver:
            if st.solver is None:
                assert st.poly is not None
                st.solver = IntervalProblemSolver(
                    st.poly, mu, r_bits, counter, stats
                )
            return st.solver

        pre_tids: list[int] = []
        for t in range(L + 1):
            def pre_body(st=st, t=t, L=L, sentinel=sentinel) -> None:
                solver = get_solver(st)
                assert st.inter is not None and st.signs is not None
                ys = [-sentinel] + st.inter + [sentinel]
                st.signs[t] = solver.preinterval_sign(ys[t])
            pre_tids.append(
                g.add(TaskKind.PREINTERVAL, pre_body,
                      deps=[sort_tid, st.poly_ready],
                      label=f"pre[{st.node.i},{st.node.j}]#{t}",
                      phase="interval.preinterval")
            )

        int_tids: list[int] = []
        for gap in range(L):
            def gap_body(st=st, gap=gap, sentinel=sentinel) -> None:
                solver = get_solver(st)
                assert st.inter is not None and st.signs is not None
                assert st.poly is not None and st.roots is not None
                ys = [-sentinel] + st.inter + [sentinel]
                st.roots[gap] = solver.solve_gap(
                    gap, ys[gap], ys[gap + 1],
                    st.signs[gap], st.signs[gap + 1],
                    st.poly.sign_at_neg_inf(),
                )
            int_tids.append(
                g.add(TaskKind.INTERVAL, gap_body,
                      deps=[pre_tids[gap], pre_tids[gap + 1]],
                      label=f"interval[{st.node.i},{st.node.j}]#{gap}",
                      phase="interval")
            )
        st.roots_ready = tuple(int_tids)

    root_state = add_node_tasks(root)
    return TaskGraphResult(
        graph=g, n=n, mu=mu, stats=stats, _root_state=root_state
    )
