"""The Interval Problems (paper Section 2.2) — exact case analysis plus
the hybrid sieve/bisection/Newton solver of :mod:`repro.core.sieve`.

Given a polynomial ``P`` with ``L`` distinct real roots and the scaled
mu-approximations of ``L - 1`` interleaving values (the roots of its
children in the tree), compute the scaled mu-approximation of every
root of ``P``.

All decisions are made from *exact integer signs*.  The only subtlety
beyond the paper's presentation is the measure-zero event that an
approximation point is itself a root of ``P``; the paper's sign-parity
trick then sees a zero sign.  We resolve it exactly with one derivative
evaluation: near a simple root ``t0``, ``sign(P(t0 + eps)) =
sign(P'(t0))``.  This keeps every gap's decision independent of its
neighbours — exactly what the INTERVAL tasks of Section 3.2 need.
"""

from __future__ import annotations

from repro.costmodel.counter import NULL_COUNTER, CostCounter
from repro.obs.trace import NULL_TRACER, Tracer
from repro.core.scaling import ceil_div
from repro.core.sieve import HybridSolver, IntervalStats
from repro.poly.dense import IntPoly
from repro.poly.eval import ScaledEvaluator, scaled_eval

__all__ = [
    "IntervalProblemSolver",
    "IntervalStats",
    "sign_plus",
    "solve_linear_scaled",
]

PHASE_PREINTERVAL = "interval.preinterval"


def sign_plus(
    p: IntPoly,
    dp: IntPoly,
    y: int,
    w: int,
    counter: CostCounter = NULL_COUNTER,
    stats: IntervalStats | None = None,
) -> int:
    """Sign of ``p`` just *right* of the grid point ``y / 2**w``.

    For ``p(y/2**w) != 0`` this is the plain sign; at an exact (simple)
    root it is the sign of the derivative there.  ``p`` must be
    square-free for the derivative tie-break to be valid.
    """
    v = scaled_eval(p, y, w, counter)
    if stats is not None:
        stats.evaluations += 1
    if v != 0:
        return 1 if v > 0 else -1
    dv = scaled_eval(dp, y, w, counter)
    if stats is not None:
        stats.evaluations += 1
    if dv == 0:
        raise ArithmeticError(
            "polynomial and derivative both vanish — input not square-free"
        )
    return 1 if dv > 0 else -1


def solve_linear_scaled(p: IntPoly, mu: int) -> int:
    """Scaled mu-approximation of the root of a linear polynomial.

    The tree's leaves are linear (paper: "the leaves of the tree
    correspond to linear polynomials, whose roots are easy to
    estimate").  Root of ``q1*x + q0`` is ``-q0/q1``.
    """
    if p.degree != 1:
        raise ValueError("solve_linear_scaled needs a degree-1 polynomial")
    q0, q1 = p.coefficient(0), p.coefficient(1)
    if q1 < 0:
        q0, q1 = -q0, -q1
    return ceil_div((-q0) << mu, q1)


class IntervalProblemSolver:
    """Solves all interval problems for one node polynomial.

    Parameters
    ----------
    p:
        The node polynomial (distinct real roots, positive leading
        coefficient).
    mu:
        Bits of output precision (scaled grid is ``2**-mu``).
    r_bits:
        All roots of ``p`` lie strictly inside ``(-2**r_bits, 2**r_bits)``
        — the paper's ``R``; the sentinels ``y_0, y_L`` (Section 2.2).
    tracer:
        Observability hook; a real tracer gets one span per case-2c gap
        and one ``interval_case`` event per gap (see
        :mod:`repro.obs.events`).
    label:
        Free-form origin tag (the tree-node label) stamped on events.
    """

    def __init__(
        self,
        p: IntPoly,
        mu: int,
        r_bits: int,
        counter: CostCounter = NULL_COUNTER,
        stats: IntervalStats | None = None,
        strategy: str = "hybrid",
        tracer: Tracer = NULL_TRACER,
        label: str = "",
    ):
        if p.degree < 1:
            raise ValueError("need a nonconstant polynomial")
        self.p = p
        self.dp = p.derivative()
        self.mu = mu
        self.r_bits = r_bits
        self.counter = counter
        self.stats = stats if stats is not None else IntervalStats()
        self.tracer = tracer
        self.label = label
        self.sentinel = 1 << (r_bits + mu)
        self._ev_p = ScaledEvaluator(self.p, mu)
        self._ev_dp = ScaledEvaluator(self.dp, mu)
        self._solver = HybridSolver(
            self.p, self.dp, mu, counter=counter, stats=self.stats,
            strategy=strategy, tracer=tracer,
        )

    # -- PREINTERVAL: evaluate the polynomial at every interleaving point --
    def preinterval_sign(self, y_scaled: int) -> int:
        """Sign of ``p`` just right of one interleaving approximation.

        One of these per interleaving point is the grain of the paper's
        PREINTERVAL tasks.
        """
        with self.counter.phase(PHASE_PREINTERVAL):
            v = self._ev_p.eval(y_scaled, self.counter)
            self.stats.evaluations += 1
            self.stats.preinterval_evals += 1
            if v != 0:
                return 1 if v > 0 else -1
            dv = self._ev_dp.eval(y_scaled, self.counter)
            self.stats.evaluations += 1
            if dv == 0:
                raise ArithmeticError(
                    "polynomial and derivative both vanish — input not "
                    "square-free"
                )
            return 1 if dv > 0 else -1

    def preinterval_signs(self, ys_scaled: list[int]) -> list[int]:
        """Signs just right of every point of ``ys_scaled`` — the whole
        PREINTERVAL stage for one node.

        Each endpoint is evaluated exactly once; adjacent gaps share
        their common endpoint's sign instead of each recomputing it
        (half the endpoint evaluations of per-gap
        :meth:`solve_gap_standalone` dispatch).

        The whole vector is evaluated with one batched Horner call
        (:meth:`ScaledEvaluator.eval_many`), reusing the shifted
        coefficient payload; derivative tie-breaks happen only for the
        (rare) exact zeros.  Per-point op order matches
        :meth:`preinterval_sign`, so phase totals are bit-identical to
        the per-point loop.
        """
        with self.counter.phase(PHASE_PREINTERVAL):
            vals = self._ev_p.eval_many(ys_scaled, self.counter)
            self.stats.evaluations += len(ys_scaled)
            self.stats.preinterval_evals += len(ys_scaled)
            signs: list[int] = []
            for y, v in zip(ys_scaled, vals):
                if v != 0:
                    signs.append(1 if v > 0 else -1)
                    continue
                dv = self._ev_dp.eval(y, self.counter)
                self.stats.evaluations += 1
                if dv == 0:
                    raise ArithmeticError(
                        "polynomial and derivative both vanish — input not "
                        "square-free"
                    )
                signs.append(1 if dv > 0 else -1)
            return signs

    # -- full solve ------------------------------------------------------
    def solve_all(self, interleave_scaled: list[int]) -> list[int]:
        """Return the scaled mu-approximations of all roots, ascending.

        ``interleave_scaled`` must be the sorted scaled approximations of
        the ``deg(p) - 1`` interleaving values.
        """
        L = self.p.degree
        if len(interleave_scaled) != L - 1:
            raise ValueError(
                f"need {L - 1} interleaving points, got {len(interleave_scaled)}"
            )
        if L == 1:
            return [solve_linear_scaled(self.p, self.mu)]

        ys = [-self.sentinel] + list(interleave_scaled) + [self.sentinel]
        signs = self.preinterval_signs(ys)
        sign_at_minus_inf = self.p.sign_at_neg_inf()

        out: list[int] = []
        for i in range(L):
            out.append(
                self.solve_gap(
                    i, ys[i], ys[i + 1], signs[i], signs[i + 1], sign_at_minus_inf
                )
            )
        return out

    def solve_gap_standalone(
        self, i: int, left: int, right: int, sign_at_minus_inf: int | None = None
    ) -> int:
        """Solve gap ``i`` independently (the INTERVAL task body).

        Recomputes the two endpoint signs; used by the task graph where
        each INTERVAL task carries its own gap.
        """
        if sign_at_minus_inf is None:
            sign_at_minus_inf = self.p.sign_at_neg_inf()
        s_left = self.preinterval_sign(left)
        s_right = self.preinterval_sign(right)
        return self.solve_gap(i, left, right, s_left, s_right, sign_at_minus_inf)

    # -- the case analysis of Section 2.2 -----------------------------------
    def solve_gap(
        self,
        i: int,
        left: int,
        right: int,
        s_left: int,
        s_right: int,
        sign_at_minus_inf: int,
    ) -> int:
        """Return the scaled approximation of root ``x_i in (left, right]``.

        ``s_left`` / ``s_right`` are the just-right-of signs of ``p`` at
        the endpoints.  ``left``/``right`` are the scaled approximations
        ``ytilde_i`` and ``ytilde_{i+1}`` (with sentinels at the ends).
        """
        st = self.stats
        tracer = self.tracer
        # Case 1: coincident approximations pin the root's approximation.
        if left == right:
            st.case1 += 1
            tracer.event("interval_case", node=self.label, gap=i, case="1")
            return left

        # Case 2: count roots <= left via the parity trick (paper's r_i,
        # adapted to "just right of" signs so exact hits are counted).
        # u = #roots <= ytilde_i, known to be i or i+1.
        parity_even = s_left == sign_at_minus_inf * (1 if i % 2 == 0 else -1)
        u = i if parity_even else i + 1

        if u == i + 1:
            # Case 2a: x_i in (ytilde_i - 2^-mu, ytilde_i] -> approx is ytilde_i.
            st.case2a += 1
            tracer.event("interval_case", node=self.label, gap=i, case="2a")
            return left

        # x_i > left.  b = ytilde_{i+1} - one grid step.
        b = right - 1
        if b == left:
            # Zero-width middle region: root in (b, right] directly.
            st.case2b += 1
            tracer.event("interval_case", node=self.label, gap=i, case="2b")
            return right
        s_b = self.preinterval_sign(b)
        if s_b == s_left:
            # Case 2b: no root in (left, b] -> x_i in (b, right].
            st.case2b += 1
            tracer.event("interval_case", node=self.label, gap=i, case="2b")
            return right

        # Case 2c: x_i isolated in (left, b]; run the hybrid solver.
        st.case2c += 1
        with tracer.span("interval.solve", phase="interval",
                         node=self.label, gap=i):
            result = self._solver.solve(left, b, s_left)
        sieve_e, bisect_e, newton_i = st.per_solve[-1]
        tracer.event(
            "interval_case", node=self.label, gap=i, case="2c",
            sieve_evals=sieve_e, bisection_evals=bisect_e,
            newton_iters=newton_i,
        )
        return result
