"""repro.obs: unified tracing and metrics for real and simulated runs.

The observability layer of the reproduction: hierarchical spans tied to
the paper's bit-cost currency (:mod:`repro.obs.trace`), structured
JSONL run logs (:mod:`repro.obs.events`), Chrome trace-event export for
both real runs and simulated schedules (:mod:`repro.obs.chrometrace`),
a counter/gauge/histogram registry (:mod:`repro.obs.metrics`), span
rollups including the real-run utilization/parallel-efficiency summary
(:mod:`repro.obs.rollup`), versioned benchmark artifacts with a
regression gate (:mod:`repro.obs.perf`), the append-only cross-run
performance ledger (:mod:`repro.obs.ledger`), phase/lane trace diffing
with regression attribution (:mod:`repro.obs.tracediff`), an opt-in
sampling profiler with collapsed-stack/flamegraph output
(:mod:`repro.obs.profile`), Prometheus/OpenMetrics text exposition
of any metrics registry (:mod:`repro.obs.export`), and declarative
SLO objectives with rolling-window error-budget burn evaluated over
request timelines (:mod:`repro.obs.slo`).

Quickstart::

    from repro import RealRootFinder, IntPoly, CostCounter
    from repro.obs import Tracer, EventLog, spans_to_chrome

    counter = CostCounter()
    with EventLog("run.jsonl") as log:
        log.run_header("api", degree=3)
        tracer = Tracer(counter=counter, sink=log)
        finder = RealRootFinder(mu_bits=32, counter=counter, tracer=tracer)
        result = finder.find_roots(IntPoly.from_roots([-3, 0, 2]))
        log.run_end(counter=counter, stats=result.stats)

Untraced runs pay nothing: the default :data:`NULL_TRACER` mirrors
``NULL_COUNTER``.
"""

from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.events import EventLog, read_events, validate_events
from repro.obs.chrometrace import (
    schedule_to_chrome,
    schedules_to_chrome,
    spans_to_chrome,
    worker_busy_series,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_from_dict,
    labeled,
    run_metrics,
    split_labels,
)
from repro.obs.perf import (
    BenchArtifact,
    MetricDiff,
    compare_artifacts,
    env_fingerprint,
    format_diff_table,
    read_artifact,
    render_gate_report,
    validate_artifact,
    write_artifact,
)
from repro.obs.ledger import Ledger, RunRecord, record_from_artifact
from repro.obs.tracediff import TraceDiff, diff_runs
from repro.obs.profile import SamplingProfiler, collapse, write_collapsed
from repro.obs.export import render_openmetrics, write_openmetrics
from repro.obs.slo import DEFAULT_SLO, Objective, SLOConfig, evaluate_slo
from repro.obs.rollup import (
    level_wall_ns,
    parallel_rollup,
    phase_wall_ns,
    self_wall_ns,
    worker_busy_intervals,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "EventLog",
    "read_events",
    "validate_events",
    "spans_to_chrome",
    "worker_busy_series",
    "schedule_to_chrome",
    "schedules_to_chrome",
    "write_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "run_metrics",
    "labeled",
    "split_labels",
    "histogram_from_dict",
    "BenchArtifact",
    "MetricDiff",
    "compare_artifacts",
    "env_fingerprint",
    "format_diff_table",
    "read_artifact",
    "render_gate_report",
    "validate_artifact",
    "write_artifact",
    "Ledger",
    "RunRecord",
    "record_from_artifact",
    "TraceDiff",
    "diff_runs",
    "SamplingProfiler",
    "collapse",
    "write_collapsed",
    "render_openmetrics",
    "write_openmetrics",
    "Objective",
    "SLOConfig",
    "DEFAULT_SLO",
    "evaluate_slo",
    "self_wall_ns",
    "phase_wall_ns",
    "level_wall_ns",
    "parallel_rollup",
    "worker_busy_intervals",
]
