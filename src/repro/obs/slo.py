"""Declarative service-level objectives over the request-timeline ring.

An :class:`Objective` names one promise the daemon makes — a latency
percentile ceiling (``p99_ms``, ``p50_ms``, any ``pNN_ms``) or an
availability floor (``error_rate``) — and :func:`evaluate_slo` measures
it against the rolling window of recently completed requests that
:class:`repro.serve.reqtrace.TimelineRing` holds.  The verdict uses the
error-budget framing: each objective reports its observed value, its
threshold, and the **burn** (observed / threshold, so ``1.0`` is the
budget line and ``2.0`` means twice the promised tail); the overall
report is ``ok`` iff every burn is at or under ``1.0``.

Samples are plain dicts (``{"time_unix", "total_ms", "status"}``), so
the evaluator works identically on the live ring, a replayed access
log, and the loadtest driver's latency list.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = [
    "Objective",
    "SLOConfig",
    "DEFAULT_SLO",
    "evaluate_slo",
    "timeline_samples",
]

#: Statuses counted against the availability objective (a shed request
#: is a broken promise too; a ``partial`` kept the budget contract).
ERROR_STATUSES = ("error", "overloaded")

_PCTL = re.compile(r"^p(\d{1,2})_ms$")


@dataclass(frozen=True)
class Objective:
    """One promise: a named kind and its threshold.

    ``kind`` is ``error_rate`` (threshold a fraction in ``[0, 1]``) or
    ``pNN_ms`` (threshold a latency ceiling in milliseconds for the
    NN-th percentile, e.g. ``p99_ms``)."""

    name: str
    kind: str
    threshold: float

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError(f"objective {self.name!r}: threshold "
                             "must be >= 0")
        if self.kind != "error_rate" and not _PCTL.match(self.kind):
            raise ValueError(
                f"objective {self.name!r}: unknown kind {self.kind!r} "
                "(want error_rate or pNN_ms)"
            )

    @property
    def quantile(self) -> float | None:
        """The percentile as a fraction (``None`` for error_rate)."""
        m = _PCTL.match(self.kind)
        return int(m.group(1)) / 100.0 if m else None


@dataclass(frozen=True)
class SLOConfig:
    """A set of objectives plus the rolling window they apply to."""

    objectives: tuple[Objective, ...] = field(default_factory=tuple)
    window_seconds: float = 300.0

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SLOConfig":
        """Build from the JSON shape ``--slo-config`` files use::

            {"window_seconds": 300,
             "objectives": [{"name": "latency", "kind": "p99_ms",
                             "threshold": 500}]}
        """
        objs = tuple(
            Objective(name=str(o["name"]), kind=str(o["kind"]),
                      threshold=float(o["threshold"]))
            for o in d.get("objectives", [])
        )
        return cls(objectives=objs,
                   window_seconds=float(d.get("window_seconds", 300.0)))

    @classmethod
    def from_file(cls, path: str) -> "SLOConfig":
        """Load a JSON config file (:meth:`from_dict` shape)."""
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


#: Generous lab-daemon defaults: a 5-minute window promising p99 under
#: 5 s and fewer than 5 % errors — loose enough that a healthy CI smoke
#: passes, tight enough that a wedged pool or shedding storm trips it.
DEFAULT_SLO = SLOConfig(objectives=(
    Objective(name="latency_p99", kind="p99_ms", threshold=5000.0),
    Objective(name="availability", kind="error_rate", threshold=0.05),
))


def timeline_samples(timelines: Sequence[Any]) -> list[dict[str, Any]]:
    """Project :class:`~repro.serve.reqtrace.RequestTimeline` objects
    (or compatible dicts) onto the evaluator's sample shape."""
    out = []
    for tl in timelines:
        if isinstance(tl, Mapping):
            out.append({
                "time_unix": float(tl.get("time_unix", 0.0)),
                "total_ms": float(tl.get("total_ns", 0)) / 1e6,
                "status": str(tl.get("status", "?")),
            })
        else:
            out.append({
                "time_unix": tl.time_unix,
                "total_ms": tl.total_ns / 1e6,
                "status": tl.status,
            })
    return out


def _percentile(sorted_ms: Sequence[float], q: float) -> float:
    rank = max(1, math.ceil(len(sorted_ms) * q))
    return sorted_ms[rank - 1]


def evaluate_slo(
    samples: Sequence[Mapping[str, Any]],
    config: SLOConfig = DEFAULT_SLO,
    now: float | None = None,
) -> dict[str, Any]:
    """Measure every objective against the samples inside the window.

    ``samples`` carry ``time_unix`` / ``total_ms`` / ``status``;
    ``now`` anchors the window (defaults to the newest sample, so
    replayed logs evaluate in their own time frame).  Returns::

        {"ok": bool, "window_seconds": ..., "samples": N,
         "objectives": [{"name", "kind", "threshold", "observed",
                         "burn", "ok"}, ...]}

    With zero in-window samples every objective reports ``observed``
    ``None`` and passes — no traffic breaks no promises.
    """
    if now is None:
        now = max((float(s.get("time_unix", 0.0)) for s in samples),
                  default=0.0)
    window = [s for s in samples
              if float(s.get("time_unix", 0.0)) >= now - config.window_seconds]
    lat = sorted(float(s.get("total_ms", 0.0)) for s in window)
    errors = sum(1 for s in window
                 if str(s.get("status")) in ERROR_STATUSES)
    out: dict[str, Any] = {
        "ok": True,
        "window_seconds": config.window_seconds,
        "samples": len(window),
        "objectives": [],
    }
    for obj in config.objectives:
        observed: float | None
        if not window:
            observed = None
        elif obj.kind == "error_rate":
            observed = errors / len(window)
        else:
            q = obj.quantile
            assert q is not None
            observed = _percentile(lat, q)
        if observed is None:
            burn, ok = 0.0, True
        elif obj.threshold == 0:
            burn = math.inf if observed > 0 else 0.0
            ok = observed == 0
        else:
            burn = observed / obj.threshold
            ok = burn <= 1.0
        out["objectives"].append({
            "name": obj.name, "kind": obj.kind,
            "threshold": obj.threshold, "observed": observed,
            "burn": burn, "ok": ok,
        })
        out["ok"] = out["ok"] and ok
    return out
