"""Hierarchical tracing spans tied to the paper's bit-cost currency.

A :class:`Tracer` records a tree of :class:`Span` objects.  Each span
carries wall-clock nanoseconds *and* — when the tracer is built with a
:class:`repro.costmodel.counter.CostCounter` — the per-phase
multiplication/division/addition counts and quadratic bit costs
accumulated while the span was open (via the counter's
``snapshot``/``diff`` API).  That makes a traced run the bridge between
the two time axes of the paper: real seconds on this host and the
simulated bit-operation clock of Section 4.

The default :data:`NULL_TRACER` mirrors
:data:`repro.costmodel.counter.NULL_COUNTER`: algorithm code is written
once against the tracer interface, and an untraced run pays only a
no-op context-manager entry per span site.

Spans serialize to plain dicts (:meth:`Tracer.export`) so worker
processes can capture spans and ship them back through a
``multiprocessing`` pool; the parent re-parents them with
:meth:`Tracer.adopt`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.costmodel.counter import CostCounter, PhaseStats

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class Span:
    """One traced region: a name, a phase path, a time slice, a cost.

    ``cost`` maps cost-counter phase names to the :class:`PhaseStats`
    deltas charged while the span was open (``None`` until the span
    closes, ``{}`` when the tracer has no counter).
    """

    sid: int
    name: str
    phase: str
    depth: int
    parent: int | None
    start_ns: int
    end_ns: int | None = None
    #: display lane: 0 for the main process, workers get their own.
    track: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)
    cost: dict[str, PhaseStats] | None = None

    @property
    def wall_ns(self) -> int:
        """Span duration in nanoseconds (0 while still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def bit_cost(self) -> int:
        """Total quadratic bit cost charged while the span was open."""
        if not self.cost:
            return 0
        return sum(st.total_bit_cost for st in self.cost.values())

    @property
    def mul_count(self) -> int:
        """Multiplications charged while the span was open."""
        if not self.cost:
            return 0
        return sum(st.mul_count for st in self.cost.values())

    def to_dict(self) -> dict[str, Any]:
        """JSON-/pickle-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "sid": self.sid,
            "name": self.name,
            "phase": self.phase,
            "depth": self.depth,
            "parent": self.parent,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "track": self.track,
            "attrs": dict(self.attrs),
            "cost": {
                ph: [st.mul_count, st.mul_bit_cost, st.div_count,
                     st.div_bit_cost, st.add_count, st.add_bit_cost]
                for ph, st in (self.cost or {}).items()
            },
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Span":
        """Rebuild a span exported by :meth:`to_dict`."""
        return cls(
            sid=d["sid"],
            name=d["name"],
            phase=d["phase"],
            depth=d["depth"],
            parent=d["parent"],
            start_ns=d["start_ns"],
            end_ns=d["end_ns"],
            track=d.get("track", 0),
            attrs=dict(d.get("attrs", {})),
            cost={ph: PhaseStats(*vals) for ph, vals in d.get("cost", {}).items()},
        )


class Tracer:
    """Collects hierarchical spans; optionally streams them to a sink.

    Parameters
    ----------
    counter:
        When given, every span's per-phase cost delta is computed from
        the counter's ``snapshot``/``diff`` around the span body.
    sink:
        Optional event sink (duck-typed; see
        :class:`repro.obs.events.EventLog`) receiving ``span_open`` /
        ``span_close`` / ``event`` callbacks as they happen.
    """

    def __init__(
        self, counter: CostCounter | None = None, sink: Any | None = None
    ):
        self.counter = counter
        self.sink = sink
        self.spans: list[Span] = []
        #: timestamped counter samples ``(t_ns, name, value)`` — the
        #: live-telemetry series (executor queue depth, in-flight
        #: tasks) that become Chrome-trace ``"ph": "C"`` lanes.
        self.counters: list[tuple[int, str, float]] = []
        self._stack: list[int] = []
        self._next_track = 1  # 0 is the main process
        self._track_by_key: dict[Any, int] = {}

    @property
    def enabled(self) -> bool:
        """True for a real tracer, False for :class:`NullTracer`."""
        return True

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self.spans[self._stack[-1]] if self._stack else None

    @contextmanager
    def span(self, name: str, phase: str = "", **attrs: Any) -> Iterator[Span]:
        """Open a span for the duration of the ``with`` block.

        ``phase`` is the dotted cost-phase path the region belongs to
        (the same vocabulary as :class:`CostCounter`); ``attrs`` are
        free-form JSON-safe annotations (node labels, degrees, ...).
        """
        sid = len(self.spans)
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            sid=sid,
            name=name,
            phase=phase,
            depth=len(self._stack),
            parent=parent,
            start_ns=time.perf_counter_ns(),
            attrs=attrs,
        )
        self.spans.append(sp)
        self._stack.append(sid)
        snap = self.counter.snapshot() if self.counter is not None else None
        if self.sink is not None:
            self.sink.span_open(sp)
        try:
            yield sp
        finally:
            sp.end_ns = time.perf_counter_ns()
            sp.cost = self.counter.diff(snap) if snap is not None else {}
            self._stack.pop()
            if self.sink is not None:
                self.sink.span_close(sp)

    def event(self, name: str, **fields: Any) -> None:
        """Emit an instantaneous structured event (no span is recorded)."""
        if self.sink is not None:
            self.sink.event(name, fields)

    def sample(self, name: str, value: float, t_ns: int | None = None) -> None:
        """Record one sample of a named counter time series.

        Samples are event-driven (the caller samples at state changes,
        not on a timer), cost one list append, and are exported as
        Chrome-trace counter lanes by
        :func:`repro.obs.chrometrace.spans_to_chrome`.
        """
        self.counters.append(
            (t_ns if t_ns is not None else time.perf_counter_ns(), name, value)
        )

    # -- worker-span merging ------------------------------------------------
    def export(self) -> list[dict[str, Any]]:
        """All spans as plain dicts — what a pool worker returns."""
        return [sp.to_dict() for sp in self.spans]

    def adopt(
        self,
        exported: list[dict[str, Any]],
        label: str = "",
        key: Any | None = None,
    ) -> None:
        """Merge spans exported by another tracer (a pool worker).

        Adopted spans are re-numbered, re-parented under the currently
        open span, and assigned a display track so per-worker lanes
        survive into the Chrome trace: batches sharing ``key`` (e.g.
        the worker's OS pid) share a track; with no key every batch
        gets a fresh one.  Worker clocks are ``perf_counter_ns`` in
        another process and therefore not directly comparable; the
        adopted spans keep their relative timing but are shifted so the
        earliest one starts at the open parent's start (or at adoption
        time with no open span).
        """
        if not exported:
            return
        base_sid = len(self.spans)
        parent = self._stack[-1] if self._stack else None
        if key is not None and key in self._track_by_key:
            track = self._track_by_key[key]
        else:
            track = self._next_track
            self._next_track += 1
            if key is not None:
                self._track_by_key[key] = track
        t0 = min(d["start_ns"] for d in exported)
        anchor = (
            self.spans[parent].start_ns if parent is not None
            else time.perf_counter_ns()
        )
        base_depth = (self.spans[parent].depth + 1) if parent is not None else 0
        for d in exported:
            sp = Span.from_dict(d)
            sp.sid = base_sid + sp.sid
            sp.parent = base_sid + sp.parent if sp.parent is not None else parent
            sp.depth += base_depth
            sp.track = track
            sp.start_ns += anchor - t0
            if sp.end_ns is not None:
                sp.end_ns += anchor - t0
            if label:
                sp.attrs.setdefault("worker", label)
            self.spans.append(sp)


class _NullSpanContext:
    """Reusable do-nothing context manager yielding ``None``."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class NullTracer(Tracer):
    """Zero-overhead tracer: every span site costs one no-op ``with``.

    Mirrors :class:`repro.costmodel.counter.NullCounter` so the
    algorithm code carries a single instrumentation path.
    """

    def __init__(self) -> None:
        super().__init__()

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, phase: str = "", **attrs: Any) -> _NullSpanContext:  # type: ignore[override]
        return _NULL_SPAN

    def event(self, name: str, **fields: Any) -> None:
        pass

    def sample(self, name: str, value: float, t_ns: int | None = None) -> None:
        pass

    def adopt(
        self,
        exported: list[dict[str, Any]],
        label: str = "",
        key: Any | None = None,
    ) -> None:
        pass


#: Shared module-level null tracer; safe because it keeps no state.
NULL_TRACER = NullTracer()
