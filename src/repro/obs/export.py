"""Prometheus / OpenMetrics text-format export of a metrics registry.

This is the scrape surface for the planned ``repro serve`` daemon:
any :class:`repro.obs.metrics.MetricsRegistry` renders to the
OpenMetrics text exposition format (:func:`render_openmetrics`) or to a
JSON-safe snapshot dict (:func:`snapshot`), so external scrapers and
dashboards can watch the executor's live counters without knowing
anything about the repo's internals.

Mapping rules:

* metric names are sanitized to ``[a-zA-Z_][a-zA-Z0-9_]*`` and
  prefixed with a namespace (``executor.queue_depth`` becomes
  ``repro_executor_queue_depth``);
* :class:`~repro.obs.metrics.Counter` renders as an OpenMetrics
  ``counter`` with the mandatory ``_total`` sample suffix;
* :class:`~repro.obs.metrics.Gauge` renders as a ``gauge``;
* :class:`~repro.obs.metrics.Histogram` renders as a ``histogram``
  with **cumulative** ``_bucket{le="..."}`` samples.  The registry's
  power-of-two buckets (bucket ``k`` counts observations with
  ``bit_length() == k``) map to upper bounds ``le="0"``, ``le="1"``,
  ``le="3"``, ``le="7"``, ... — strictly increasing, so cumulative
  counts are monotone by construction — plus the required
  ``le="+Inf"`` / ``_sum`` / ``_count`` samples.

Every metric gets ``# HELP`` and ``# TYPE`` lines and the exposition
ends with ``# EOF`` as OpenMetrics requires.
"""

from __future__ import annotations

import re
import time
from typing import IO, Any, Mapping

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    split_labels,
)

__all__ = [
    "sanitize_metric_name",
    "render_openmetrics",
    "snapshot",
    "write_openmetrics",
    "CONTENT_TYPE",
]

#: HTTP ``Content-Type`` for the OpenMetrics text exposition format —
#: what the daemon's ``/metrics`` endpoint will serve.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str, namespace: str = "repro") -> str:
    """OpenMetrics-legal metric name: namespaced, ``[a-zA-Z0-9_]`` only.

    Dots and any other illegal characters become underscores;
    ``namespace`` (itself sanitized) is prepended with an underscore.
    A name that would start with a digit gains a leading underscore.
    """
    out = _INVALID.sub("_", name)
    if namespace:
        out = f"{_INVALID.sub('_', namespace)}_{out}"
    if out[:1].isdigit():
        out = "_" + out
    return out


def _fmt(v: float) -> str:
    """Sample value rendering: integers without a trailing ``.0``."""
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v)


def _bucket_upper(k: int) -> int:
    """Upper bound of power-of-two bucket ``k`` (``bit_length() == k``)."""
    return 0 if k == 0 else (1 << k) - 1


def _labels(body: str, extra: str | None = None) -> str:
    """Render a sample's label block from the registry-key body plus an
    optional exporter-owned label (the histogram ``le``)."""
    parts = [p for p in (body, extra) if p]
    return f"{{{','.join(parts)}}}" if parts else ""


def _render_histogram(name: str, body: str, h: Histogram,
                      lines: list[str]) -> None:
    cumulative = 0
    for k in sorted(h.buckets):
        cumulative += h.buckets[k]
        le = f'le="{_bucket_upper(k)}"'
        lines.append(f"{name}_bucket{_labels(body, le)} {cumulative}")
    inf = 'le="+Inf"'
    lines.append(f"{name}_bucket{_labels(body, inf)} {h.count}")
    lines.append(f"{name}_sum{_labels(body)} {h.total}")
    lines.append(f"{name}_count{_labels(body)} {h.count}")


def render_openmetrics(
    registry: MetricsRegistry,
    namespace: str = "repro",
    help_texts: Mapping[str, str] | None = None,
) -> str:
    """The registry in OpenMetrics text exposition format.

    Labeled registry names (:func:`repro.obs.metrics.labeled` — base
    name plus an embedded ``{k="v",...}`` body) are grouped into one
    family per base name: ``# HELP`` / ``# TYPE`` render once for the
    family and each member renders as a sample carrying its labels
    (histogram members merge their labels with the exporter's ``le``).
    Families render in sorted base-name order, members in sorted
    label-body order — the whole exposition is deterministic for one
    registry state.  ``help_texts`` may override the default help
    string per *base* metric name; the exposition is terminated by the
    mandatory ``# EOF`` line.
    """
    families: dict[str, list[tuple[str, Any]]] = {}
    for raw in registry.names():
        base, body = split_labels(raw)
        families.setdefault(base, []).append((body, registry._metrics[raw]))
    lines: list[str] = []
    for base in sorted(families):
        members = sorted(families[base], key=lambda pair: pair[0])
        kinds = {type(m) for _, m in members}
        if len(kinds) > 1:
            raise TypeError(
                f"metric family {base!r} mixes types "
                f"{sorted(k.__name__ for k in kinds)}"
            )
        name = sanitize_metric_name(base, namespace)
        help_text = (help_texts or {}).get(base) or f"repro metric {base}"
        lines.append(f"# HELP {name} {help_text}")
        m0 = members[0][1]
        if isinstance(m0, Counter):
            lines.append(f"# TYPE {name} counter")
            for body, m in members:
                lines.append(
                    f"{name}_total{_labels(body)} {_fmt(float(m.value))}"
                )
        elif isinstance(m0, Gauge):
            lines.append(f"# TYPE {name} gauge")
            for body, m in members:
                lines.append(f"{name}{_labels(body)} {_fmt(m.value)}")
        elif isinstance(m0, Histogram):
            lines.append(f"# TYPE {name} histogram")
            for body, m in members:
                _render_histogram(name, body, m, lines)
        else:  # pragma: no cover - registry only holds the three kinds
            raise TypeError(f"cannot export metric type {type(m0).__name__}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def snapshot(registry: MetricsRegistry) -> dict[str, Any]:
    """JSON-safe point-in-time dump of the registry.

    The dict API the daemon will mount next to the text endpoint:
    ``{"time_unix": ..., "metrics": {name: as_dict()}}`` — every metric
    kind keeps its full shape (histogram buckets included), unlike the
    flattened text format.
    """
    return {"time_unix": time.time(), "metrics": registry.as_dict()}


def write_openmetrics(
    path_or_file: str | IO[str],
    registry: MetricsRegistry,
    namespace: str = "repro",
) -> None:
    """Serialize :func:`render_openmetrics` output to a path or file."""
    payload = render_openmetrics(registry, namespace=namespace)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            fh.write(payload)
    else:
        path_or_file.write(payload)
