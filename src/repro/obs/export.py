"""Prometheus / OpenMetrics text-format export of a metrics registry.

This is the scrape surface for the planned ``repro serve`` daemon:
any :class:`repro.obs.metrics.MetricsRegistry` renders to the
OpenMetrics text exposition format (:func:`render_openmetrics`) or to a
JSON-safe snapshot dict (:func:`snapshot`), so external scrapers and
dashboards can watch the executor's live counters without knowing
anything about the repo's internals.

Mapping rules:

* metric names are sanitized to ``[a-zA-Z_][a-zA-Z0-9_]*`` and
  prefixed with a namespace (``executor.queue_depth`` becomes
  ``repro_executor_queue_depth``);
* :class:`~repro.obs.metrics.Counter` renders as an OpenMetrics
  ``counter`` with the mandatory ``_total`` sample suffix;
* :class:`~repro.obs.metrics.Gauge` renders as a ``gauge``;
* :class:`~repro.obs.metrics.Histogram` renders as a ``histogram``
  with **cumulative** ``_bucket{le="..."}`` samples.  The registry's
  power-of-two buckets (bucket ``k`` counts observations with
  ``bit_length() == k``) map to upper bounds ``le="0"``, ``le="1"``,
  ``le="3"``, ``le="7"``, ... — strictly increasing, so cumulative
  counts are monotone by construction — plus the required
  ``le="+Inf"`` / ``_sum`` / ``_count`` samples.

Every metric gets ``# HELP`` and ``# TYPE`` lines and the exposition
ends with ``# EOF`` as OpenMetrics requires.
"""

from __future__ import annotations

import re
import time
from typing import IO, Any, Mapping

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "sanitize_metric_name",
    "render_openmetrics",
    "snapshot",
    "write_openmetrics",
    "CONTENT_TYPE",
]

#: HTTP ``Content-Type`` for the OpenMetrics text exposition format —
#: what the daemon's ``/metrics`` endpoint will serve.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str, namespace: str = "repro") -> str:
    """OpenMetrics-legal metric name: namespaced, ``[a-zA-Z0-9_]`` only.

    Dots and any other illegal characters become underscores;
    ``namespace`` (itself sanitized) is prepended with an underscore.
    A name that would start with a digit gains a leading underscore.
    """
    out = _INVALID.sub("_", name)
    if namespace:
        out = f"{_INVALID.sub('_', namespace)}_{out}"
    if out[:1].isdigit():
        out = "_" + out
    return out


def _fmt(v: float) -> str:
    """Sample value rendering: integers without a trailing ``.0``."""
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v)


def _bucket_upper(k: int) -> int:
    """Upper bound of power-of-two bucket ``k`` (``bit_length() == k``)."""
    return 0 if k == 0 else (1 << k) - 1


def _render_histogram(name: str, h: Histogram, lines: list[str]) -> None:
    cumulative = 0
    for k in sorted(h.buckets):
        cumulative += h.buckets[k]
        lines.append(
            f'{name}_bucket{{le="{_bucket_upper(k)}"}} {cumulative}'
        )
    lines.append(f'{name}_bucket{{le="+Inf"}} {h.count}')
    lines.append(f"{name}_sum {h.total}")
    lines.append(f"{name}_count {h.count}")


def render_openmetrics(
    registry: MetricsRegistry,
    namespace: str = "repro",
    help_texts: Mapping[str, str] | None = None,
) -> str:
    """The registry in OpenMetrics text exposition format.

    Metrics render in sorted-name order, each with its ``# HELP`` /
    ``# TYPE`` preamble (``help_texts`` may override the default help
    string per *original* metric name); the exposition is terminated by
    the mandatory ``# EOF`` line.
    """
    lines: list[str] = []
    for raw in registry.names():
        m = registry._metrics[raw]
        name = sanitize_metric_name(raw, namespace)
        help_text = (help_texts or {}).get(raw) or f"repro metric {raw}"
        lines.append(f"# HELP {name} {help_text}")
        if isinstance(m, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}_total {_fmt(float(m.value))}")
        elif isinstance(m, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(m.value)}")
        elif isinstance(m, Histogram):
            lines.append(f"# TYPE {name} histogram")
            _render_histogram(name, m, lines)
        else:  # pragma: no cover - registry only holds the three kinds
            raise TypeError(f"cannot export metric type {type(m).__name__}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def snapshot(registry: MetricsRegistry) -> dict[str, Any]:
    """JSON-safe point-in-time dump of the registry.

    The dict API the daemon will mount next to the text endpoint:
    ``{"time_unix": ..., "metrics": {name: as_dict()}}`` — every metric
    kind keeps its full shape (histogram buckets included), unlike the
    flattened text format.
    """
    return {"time_unix": time.time(), "metrics": registry.as_dict()}


def write_openmetrics(
    path_or_file: str | IO[str],
    registry: MetricsRegistry,
    namespace: str = "repro",
) -> None:
    """Serialize :func:`render_openmetrics` output to a path or file."""
    payload = render_openmetrics(registry, namespace=namespace)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            fh.write(payload)
    else:
        path_or_file.write(payload)
