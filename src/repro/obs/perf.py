"""Performance-regression artifacts: a versioned bench schema + gate.

The paper is a *computational investigation*: its contribution is
measured behavior (Tables 2-12, Figures 6-13).  This module gives the
reproduction the same currency for its own evolution — every benchmark
run can be persisted as a :class:`BenchArtifact` (``BENCH_<name>.json``)
and every future change judged by :func:`compare_artifacts` against a
committed baseline, instead of prose claims.

An artifact carries four sections:

* ``env`` — an environment fingerprint (:func:`env_fingerprint`) so a
  diff across machines is never mistaken for a diff across commits;
* ``params`` — the workload pin (degrees, precision, seeds, pool size);
* ``metrics`` — flat named scalars, each tagged with a *kind*:
  ``count`` metrics (bit costs, iteration counts, case tallies) are
  deterministic for a pinned workload and are **gated**, ``wall``
  metrics (seconds on this host) are machine-dependent and reported
  **informationally only**;
* ``histograms`` / ``phases`` — the interval-solver iteration
  distributions (sieve steps / bisections / Newton iterations per
  solve) and the per-phase bit-cost / wall rollups, kept for plotting
  and drill-down (not gated);
* ``parallel`` — the executor's
  :func:`repro.obs.rollup.parallel_rollup` (makespan, efficiency,
  per-worker lanes) when the bench ran a pool stage, so
  :mod:`repro.obs.tracediff` can attribute regressions to worker
  lanes as well as phases.

The gate (:func:`compare_artifacts`) applies per-metric tolerance
bands: a baseline may override the default band for any metric via its
``tolerances`` section; otherwise ``count`` metrics must match within
``DEFAULT_COUNT_RTOL`` and ``wall`` metrics never fail.
:func:`format_diff_table` renders the comparison the way the paper's
tables juxtapose predicted and observed columns, and
:func:`render_gate_report` appends the :mod:`repro.obs.tracediff`
phase-attribution table whenever the gate fails — the failure names
the regressed *phase*, not just the metric.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import IO, Any, Iterable, Mapping

__all__ = [
    "SCHEMA",
    "DEFAULT_COUNT_RTOL",
    "BenchArtifact",
    "MetricDiff",
    "env_fingerprint",
    "validate_artifact",
    "compare_artifacts",
    "format_diff_table",
    "render_gate_report",
    "read_artifact",
    "write_artifact",
]

#: Version tag written into (and required of) every artifact.
SCHEMA = "repro.bench-artifact/1"

#: Default relative tolerance band for ``count`` metrics.  Counts are
#: deterministic for a pinned workload, so the default is exact; a
#: baseline can widen the band per metric via its ``tolerances`` map.
DEFAULT_COUNT_RTOL = 0.0

#: Metric kinds: ``count`` gates, ``wall`` informs.
_KINDS = ("count", "wall")


def env_fingerprint() -> dict[str, Any]:
    """Where this artifact was measured: interpreter, OS, core count.

    Everything here is cheap, deterministic for one host, and enough to
    explain a wall-time delta between two artifacts (``count`` metrics
    should never depend on any of it).
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


@dataclass
class BenchArtifact:
    """One benchmark run in comparable, versioned form.

    ``metrics`` maps a metric name to ``{"kind": "count"|"wall",
    "value": number}``; ``histograms`` holds
    :meth:`repro.obs.metrics.Histogram.as_dict` dumps; ``phases`` maps
    a phase name to ``{"bit_cost": int, "wall_ns": int|None}``.
    """

    name: str
    params: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, dict[str, Any]] = field(default_factory=dict)
    histograms: dict[str, dict[str, Any]] = field(default_factory=dict)
    phases: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: executor parallel rollup (``{}`` when the run had no pool stage).
    parallel: dict[str, Any] = field(default_factory=dict)
    env: dict[str, Any] = field(default_factory=env_fingerprint)
    tolerances: dict[str, float] = field(default_factory=dict)
    created_unix: float = field(default_factory=time.time)

    # -- building ---------------------------------------------------------
    def add_metric(self, name: str, value: float, kind: str = "count") -> None:
        """Record one named scalar (``kind`` in {``count``, ``wall``})."""
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.metrics[name] = {"kind": kind, "value": value}

    def metric(self, name: str) -> float:
        """The recorded value of metric ``name`` (KeyError if absent)."""
        return self.metrics[name]["value"]

    # -- (de)serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dump (inverse of :meth:`from_dict`)."""
        out = {
            "schema": SCHEMA,
            "name": self.name,
            "created_unix": self.created_unix,
            "env": dict(self.env),
            "params": dict(self.params),
            "metrics": {k: dict(v) for k, v in sorted(self.metrics.items())},
            "histograms": dict(self.histograms),
            "phases": dict(self.phases),
            "tolerances": dict(self.tolerances),
        }
        if self.parallel:
            # Optional section: absent for sequential runs and in
            # pre-existing artifacts, so the schema tag is unchanged.
            out["parallel"] = dict(self.parallel)
        return out

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "BenchArtifact":
        """Rebuild a validated artifact from a parsed JSON object."""
        validate_artifact(d)
        return cls(
            name=d["name"],
            params=dict(d.get("params", {})),
            metrics={k: dict(v) for k, v in d["metrics"].items()},
            histograms=dict(d.get("histograms", {})),
            phases=dict(d.get("phases", {})),
            parallel=dict(d.get("parallel", {})),
            env=dict(d.get("env", {})),
            tolerances=dict(d.get("tolerances", {})),
            created_unix=d.get("created_unix", 0.0),
        )


def validate_artifact(d: Mapping[str, Any]) -> None:
    """Schema check for one parsed artifact; raises ``ValueError``.

    Enforces the version tag, a nonempty name, and the metric shape
    (every entry a ``{"kind", "value"}`` object with a known kind and a
    numeric value).
    """
    if not isinstance(d, Mapping):
        raise ValueError("artifact must be a JSON object")
    if d.get("schema") != SCHEMA:
        raise ValueError(
            f"unsupported artifact schema {d.get('schema')!r} "
            f"(expected {SCHEMA!r})"
        )
    if not d.get("name") or not isinstance(d["name"], str):
        raise ValueError("artifact needs a nonempty string 'name'")
    metrics = d.get("metrics")
    if not isinstance(metrics, Mapping):
        raise ValueError("artifact needs a 'metrics' object")
    for mname, m in metrics.items():
        if not isinstance(m, Mapping) or "value" not in m:
            raise ValueError(f"metric {mname!r} must be {{kind, value}}")
        if m.get("kind") not in _KINDS:
            raise ValueError(
                f"metric {mname!r} has unknown kind {m.get('kind')!r}"
            )
        if not isinstance(m["value"], (int, float)) or isinstance(
            m["value"], bool
        ):
            raise ValueError(f"metric {mname!r} value must be a number")
    tol = d.get("tolerances", {})
    if not isinstance(tol, Mapping):
        raise ValueError("'tolerances' must be an object")
    for mname, band in tol.items():
        if not isinstance(band, (int, float)) or band < 0:
            raise ValueError(f"tolerance for {mname!r} must be >= 0")


def write_artifact(path_or_file: str | IO[str], artifact: BenchArtifact) -> None:
    """Serialize one artifact as stable, human-diffable JSON."""
    payload = json.dumps(artifact.to_dict(), indent=1, sort_keys=True)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
    else:
        path_or_file.write(payload + "\n")


def read_artifact(path: str) -> BenchArtifact:
    """Load and validate one ``BENCH_*.json`` artifact."""
    with open(path, encoding="utf-8") as fh:
        return BenchArtifact.from_dict(json.load(fh))


# -- the regression gate -----------------------------------------------------


@dataclass
class MetricDiff:
    """One metric's baseline-vs-current comparison."""

    name: str
    kind: str
    baseline: float | None
    current: float | None
    rtol: float | None  #: applied band; None = informational only

    @property
    def rel_delta(self) -> float | None:
        """Relative change vs. baseline (None when not computable)."""
        if self.baseline is None or self.current is None:
            return None
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)

    @property
    def status(self) -> str:
        """``ok`` / ``FAIL`` / ``info`` / ``missing`` / ``new``."""
        if self.baseline is None:
            return "new"
        if self.current is None:
            return "missing"
        if self.rtol is None:
            return "info"
        delta = self.rel_delta
        return "ok" if delta is not None and abs(delta) <= self.rtol else "FAIL"

    @property
    def failed(self) -> bool:
        """True when this metric breaches its band (missing also fails)."""
        return self.status in ("FAIL", "missing")


def compare_artifacts(
    baseline: BenchArtifact,
    current: BenchArtifact,
    default_count_rtol: float = DEFAULT_COUNT_RTOL,
) -> list[MetricDiff]:
    """Per-metric tolerance-band comparison, baseline's metric order.

    Band resolution per metric: the baseline's ``tolerances`` override
    if present, else ``default_count_rtol`` for ``count`` metrics, else
    informational (``wall`` metrics, which depend on the machine, never
    gate).  Metrics present only in ``current`` are reported as ``new``
    (never failing); metrics missing from ``current`` fail — a silently
    dropped observable is itself a regression.
    """
    diffs: list[MetricDiff] = []
    for name, m in baseline.metrics.items():
        kind = m["kind"]
        cur = current.metrics.get(name)
        if name in baseline.tolerances:
            rtol: float | None = baseline.tolerances[name]
        elif kind == "count":
            rtol = default_count_rtol
        else:
            rtol = None
        diffs.append(MetricDiff(
            name=name, kind=kind, baseline=m["value"],
            current=None if cur is None else cur["value"], rtol=rtol,
        ))
    for name, m in current.metrics.items():
        if name not in baseline.metrics:
            diffs.append(MetricDiff(
                name=name, kind=m["kind"], baseline=None,
                current=m["value"], rtol=None,
            ))
    return diffs


def _fmt_value(v: float | None) -> str:
    if v is None:
        return "-"
    if isinstance(v, float) and not v.is_integer():
        return f"{v:.6g}"
    return f"{int(v)}"


def format_diff_table(diffs: Iterable[MetricDiff]) -> str:
    """Readable baseline-vs-current table, failures first."""
    rows = sorted(diffs, key=lambda d: (not d.failed, d.name))
    header = (
        f"{'metric':40s} {'kind':>5s} {'baseline':>14s} {'current':>14s} "
        f"{'delta':>8s} {'band':>7s} {'status':>7s}"
    )
    lines = [header, "-" * len(header)]
    for d in rows:
        delta = d.rel_delta
        delta_s = "-" if delta is None else f"{delta:+.2%}"
        band_s = "-" if d.rtol is None else f"{d.rtol:.2%}"
        lines.append(
            f"{d.name:40s} {d.kind:>5s} {_fmt_value(d.baseline):>14s} "
            f"{_fmt_value(d.current):>14s} {delta_s:>8s} {band_s:>7s} "
            f"{d.status:>7s}"
        )
    n_fail = sum(1 for d in rows if d.failed)
    gated = sum(1 for d in rows if d.rtol is not None or d.status == "missing")
    lines.append(
        f"{n_fail} failed of {gated} gated metrics ({len(rows)} compared)"
    )
    return "\n".join(lines)


def render_gate_report(
    baseline: BenchArtifact,
    current: BenchArtifact,
    diffs: Iterable[MetricDiff],
) -> str:
    """The full gate output: diff table, plus attribution on failure.

    When any metric breaches its band, the
    :mod:`repro.obs.tracediff` decomposition of the two artifacts is
    appended so the failure names the dominant *phase* (and worker
    lane) behind each regressed metric — "remainder bit-cost +12%"
    instead of a bare metric name.
    """
    diffs = list(diffs)
    out = [format_diff_table(diffs)]
    if any(d.failed for d in diffs):
        from repro.obs.tracediff import attribute, diff_runs

        out.append("")
        out.append(attribute(diffs, diff_runs(baseline, current)))
    return "\n".join(out)
