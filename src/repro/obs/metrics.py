"""A small metrics registry: counters, gauges, histograms.

Complements the span/event machinery with cheap aggregate observables
in the style of the paper's Section 5 tables: how often each interval
case fired, how Newton iteration counts distribute (the constant-
average-iterations claim of Eq. 41), how work splits across tree
levels.  :func:`run_metrics` derives the standard set from a finished
:class:`repro.core.rootfinder.RootResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "run_metrics",
    "EXECUTOR_COUNTERS",
    "reliability_rollup",
    "labeled",
    "split_labels",
    "escape_label_value",
    "histogram_from_dict",
]

#: The executor's reliability counter vocabulary (see docs/RESILIENCE.md
#: for the glossary).  :func:`reliability_rollup` reports every name,
#: zero-filled, so reports and bench artifacts have a stable shape
#: whether or not a given run exercised the fault paths.
EXECUTOR_COUNTERS = (
    "executor.fallbacks",
    "executor.retries",
    "executor.task_timeouts",
    "executor.worker_failures",
    "executor.inline_tasks",
    "executor.stale_results",
    "executor.breaker_open",
    "executor.breaker_half_open",
    "executor.breaker_close",
    "executor.checkpoint_hits",
    "executor.teardown_timeouts",
)


def escape_label_value(v: Any) -> str:
    """Label value escaped for the exposition format: backslash, double
    quote, and newline become ``\\\\``, ``\\"``, ``\\n``."""
    return (str(v).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def labeled(name: str, **labels: Any) -> str:
    """A registry name carrying a label set: ``name{k="v",...}``.

    Labels are sorted by key, so the same label set always produces the
    same registry key regardless of call-site keyword order — which is
    what makes labeled metrics aggregate instead of fragmenting.  The
    exporter (:mod:`repro.obs.export`) recognizes the embedded braces
    and renders one OpenMetrics family per base name with the labels on
    each sample.
    """
    if not labels:
        return name
    body = ",".join(f'{k}="{escape_label_value(v)}"'
                    for k, v in sorted(labels.items()))
    return f"{name}{{{body}}}"


def split_labels(name: str) -> tuple[str, str]:
    """Split a :func:`labeled` registry name into
    ``(base_name, label_body)``; ``label_body`` is ``""`` for a plain
    name.  The body keeps its rendered ``k="v"`` form."""
    if name.endswith("}") and "{" in name:
        base, _, body = name.partition("{")
        return base, body[:-1]
    return name, ""


def histogram_from_dict(d: Mapping[str, Any],
                        name: str = "") -> "Histogram":
    """Rebuild a :class:`Histogram` from its :meth:`~Histogram.as_dict`
    form — the inverse the loadtest driver uses to compute percentiles
    from a daemon's metrics snapshot without access to the live
    registry."""
    h = Histogram(name=name)
    h.count = int(d.get("count", 0))
    h.total = int(d.get("total", 0))
    h.min = None if d.get("min") is None else int(d["min"])
    h.max = None if d.get("max") is None else int(d["max"])
    h.buckets = {int(k): int(v)
                 for k, v in dict(d.get("buckets", {})).items()}
    return h


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1)."""
        self.value += n

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe summary."""
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    name: str
    value: float = 0.0

    def set(self, v: float) -> None:
        """Record the current value."""
        self.value = v

    def add(self, delta: float) -> None:
        """Adjust the current value by ``delta`` (may be negative) —
        the natural form for level-style gauges (queue depth, in-flight
        tasks) updated at enter/exit sites.

        Boundary contract: a fresh gauge starts at ``0.0``, so ``add``
        before any ``set`` counts from zero, and the running value is
        *not* clamped — mismatched enter/exit sites show up as a
        negative level instead of being silently hidden."""
        self.value += delta

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe summary."""
        return {"type": "gauge", "value": self.value}


@dataclass
class Histogram:
    """Power-of-two bucketed distribution of nonnegative observations.

    Bucket ``k`` counts observations with ``bit_length() == k`` (so
    bucket 0 holds zeros, bucket 1 holds {1}, bucket 2 holds {2, 3},
    ...), which matches the doubling structure of every quantity the
    solver produces (evaluation counts, iteration counts, bit sizes).
    """

    name: str
    count: int = 0
    total: int = 0
    min: int | None = None
    max: int | None = None
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, v: int) -> None:
        """Record one observation (``v >= 0``)."""
        if v < 0:
            raise ValueError("histogram observations must be >= 0")
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        b = v.bit_length()
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> int | None:
        """Upper bound of the bucket holding the ``q``-quantile.

        ``q`` is a fraction in ``[0, 1]``.  Boundary behavior is part
        of the contract (the server's p50/p99 reporting depends on it):

        * empty histogram — ``None`` for every ``q``;
        * ``q == 0`` — the exact observed minimum (*not* the upper
          bound of the minimum's bucket);
        * ``q == 1`` — the exact observed maximum;
        * one observation — that observation, for every ``q``;
        * otherwise — the upper bound of the bucket holding the
          ``q``-quantile, clamped into ``[min, max]``; the true value
          ``v`` satisfies ``v.bit_length() == answer.bit_length()``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return None
        assert self.min is not None and self.max is not None
        if q == 0.0 or self.count == 1:
            return self.min
        rank = max(1, math.ceil(self.count * q))
        seen = 0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen >= rank:
                upper = 0 if b == 0 else (1 << b) - 1
                return max(min(upper, self.max), self.min)
        return self.max

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe summary."""
        return {
            "type": "histogram", "count": self.count, "total": self.total,
            "min": self.min, "max": self.max, "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Get-or-create registry keyed by metric name.

    A name is permanently bound to its first-seen type; asking for the
    same name as a different type raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls: type) -> Any:
        m = self._metrics.get(name)
        if m is None:
            m = cls(name)
            self._metrics[name] = m
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} is a {type(m).__name__}, not {cls.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def as_dict(self) -> dict[str, dict[str, Any]]:
        """JSON-safe dump of every metric."""
        return {name: m.as_dict() for name, m in sorted(self._metrics.items())}


def reliability_rollup(registry: MetricsRegistry) -> dict[str, int]:
    """The executor's reliability counters as a flat, zero-filled dict.

    Pulls every :data:`EXECUTOR_COUNTERS` name out of ``registry``
    (0 when the counter never fired), giving ``repro report`` and the
    bench artifacts a stable executor-health block: all-zero means the
    run was clean; anything else names exactly which degradation path
    fired and how often.
    """
    out: dict[str, int] = {}
    for name in EXECUTOR_COUNTERS:
        m = registry._metrics.get(name)
        out[name] = m.value if isinstance(m, Counter) else 0
    return out


def run_metrics(result: Any, registry: MetricsRegistry | None = None
                ) -> MetricsRegistry:
    """Standard metric set for one finished root-finding run.

    Populates interval-case counters, the per-solve sieve/bisection/
    Newton histograms (the observables of Figures 6-7 and Eq. 41), and
    degree/root gauges from a
    :class:`repro.core.rootfinder.RootResult`.
    """
    reg = registry if registry is not None else MetricsRegistry()
    st = result.stats
    for case in ("case1", "case2a", "case2b", "case2c"):
        reg.counter(f"interval.{case}").inc(getattr(st, case))
    reg.counter("interval.solves").inc(st.solves)
    reg.counter("interval.evaluations").inc(st.evaluations)
    for sieve, bisect, newton in st.per_solve:
        reg.histogram("interval.sieve_evals").observe(sieve)
        reg.histogram("interval.bisection_evals").observe(bisect)
        reg.histogram("interval.newton_iters").observe(newton)
    reg.gauge("run.degree").set(result.degree)
    reg.gauge("run.n_roots").set(len(result.scaled))
    reg.gauge("run.mu_bits").set(result.mu)
    reg.gauge("run.elapsed_seconds").set(result.elapsed_seconds)
    return reg
