"""Phase-level and worker-lane diffing of two runs: regression attribution.

The bench gate (:func:`repro.obs.perf.compare_artifacts`) says *that* a
gated metric moved; this module says *which phase or worker moved it*.
Given any two run-shaped objects — :class:`repro.obs.perf.BenchArtifact`
or :class:`repro.obs.ledger.RunRecord`, both carrying ``phases`` /
``histograms`` / ``parallel`` sections — :func:`diff_runs` produces a
:class:`TraceDiff` with:

* **phase deltas** — per-phase bit-cost and exclusive-wall changes
  (the paper's per-phase cost decomposition, differenced);
* **histogram deltas** — solver-iteration distribution shifts
  (sieve/bisection/Newton counts, queue-depth samples);
* **worker-lane deltas** — per-lane busy time, task count, and
  idle-tail changes from the parallel rollups, plus the headline
  makespan/efficiency/idle-tail movement.

:func:`attribute` joins a failed gate result to the trace diff: for
every failing metric it names the dominant phase mover
("``remainder`` bit-cost +12.3%"), failures first — the table ``repro
bench --check`` prints instead of a bare metric name.  ``repro diff A
B`` exposes the same comparison standalone for any two artifacts or
ledger run ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs.perf import MetricDiff

__all__ = [
    "PhaseDelta",
    "HistogramDelta",
    "LaneDelta",
    "TraceDiff",
    "diff_phases",
    "diff_histograms",
    "diff_parallel",
    "diff_runs",
    "attribute",
]


def _rel(a: float | None, b: float | None) -> float | None:
    """Relative change b vs a (None when not computable)."""
    if a is None or b is None:
        return None
    if a == 0:
        return 0.0 if b == 0 else float("inf")
    return (b - a) / abs(a)


def _fmt_rel(delta: float | None) -> str:
    if delta is None:
        return "-"
    if delta == float("inf"):
        return "+inf"
    return f"{delta:+.1%}"


def _fmt_int(v: float | None) -> str:
    return "-" if v is None else f"{int(v)}"


@dataclass
class PhaseDelta:
    """One phase's bit-cost / wall movement between two runs."""

    name: str
    bit_cost_a: int | None
    bit_cost_b: int | None
    wall_ns_a: int | None
    wall_ns_b: int | None

    @property
    def bit_rel(self) -> float | None:
        """Relative bit-cost change (None when either side is absent)."""
        return _rel(self.bit_cost_a, self.bit_cost_b)

    @property
    def wall_rel(self) -> float | None:
        """Relative exclusive-wall change."""
        return _rel(self.wall_ns_a, self.wall_ns_b)

    @property
    def bit_abs(self) -> int:
        """Absolute bit-cost movement (0 when not computable)."""
        if self.bit_cost_a is None or self.bit_cost_b is None:
            return self.bit_cost_b or self.bit_cost_a or 0
        return abs(self.bit_cost_b - self.bit_cost_a)


@dataclass
class HistogramDelta:
    """One histogram's summary-statistic movement between two runs."""

    name: str
    count_a: int
    count_b: int
    total_a: int
    total_b: int
    mean_a: float
    mean_b: float
    max_a: int | None
    max_b: int | None

    @property
    def total_rel(self) -> float | None:
        """Relative change of the summed observations."""
        return _rel(self.total_a, self.total_b)

    @property
    def moved(self) -> bool:
        """True when any summary statistic changed."""
        return (self.count_a != self.count_b or self.total_a != self.total_b
                or self.max_a != self.max_b)


@dataclass
class LaneDelta:
    """One worker lane's movement between two parallel rollups."""

    lane: int
    busy_ns_a: int | None
    busy_ns_b: int | None
    tasks_a: int | None
    tasks_b: int | None
    idle_tail_ns_a: int | None
    idle_tail_ns_b: int | None

    @property
    def busy_rel(self) -> float | None:
        """Relative busy-time change."""
        return _rel(self.busy_ns_a, self.busy_ns_b)


@dataclass
class TraceDiff:
    """The full A-vs-B decomposition of two runs (see module docs)."""

    phases: list[PhaseDelta] = field(default_factory=list)
    histograms: list[HistogramDelta] = field(default_factory=list)
    lanes: list[LaneDelta] = field(default_factory=list)
    #: headline parallel numbers: name -> (a, b); present only when both
    #: runs carried a parallel rollup.
    parallel: dict[str, tuple[float | None, float | None]] = field(
        default_factory=dict
    )

    def phase_movers(self) -> list[PhaseDelta]:
        """Phases ordered by absolute bit-cost movement, biggest first
        (ties broken by wall movement, then name)."""
        return sorted(
            self.phases,
            key=lambda d: (-d.bit_abs, -(abs(d.wall_rel or 0.0)), d.name),
        )

    def dominant_phase(self, kind: str = "count") -> PhaseDelta | None:
        """The phase that moved most on the axis matching a metric kind
        (``count`` -> bit cost, ``wall`` -> exclusive wall); ``None``
        when no phase moved at all."""
        if kind == "wall":
            ranked = sorted(
                self.phases,
                key=lambda d: -abs((d.wall_ns_b or 0) - (d.wall_ns_a or 0)),
            )
            if ranked and (ranked[0].wall_ns_a != ranked[0].wall_ns_b):
                return ranked[0]
            return None
        movers = self.phase_movers()
        if movers and movers[0].bit_abs:
            return movers[0]
        return None

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dump (``repro diff --json``)."""
        return {
            "phases": [{
                "name": d.name, "bit_cost": [d.bit_cost_a, d.bit_cost_b],
                "wall_ns": [d.wall_ns_a, d.wall_ns_b],
                "bit_rel": d.bit_rel, "wall_rel": d.wall_rel,
            } for d in self.phase_movers()],
            "histograms": [{
                "name": d.name, "count": [d.count_a, d.count_b],
                "total": [d.total_a, d.total_b], "max": [d.max_a, d.max_b],
            } for d in self.histograms],
            "lanes": [{
                "lane": d.lane, "busy_ns": [d.busy_ns_a, d.busy_ns_b],
                "tasks": [d.tasks_a, d.tasks_b],
                "idle_tail_ns": [d.idle_tail_ns_a, d.idle_tail_ns_b],
            } for d in self.lanes],
            "parallel": {k: list(v) for k, v in self.parallel.items()},
        }

    def format_table(self) -> str:
        """Readable A-vs-B decomposition, biggest phase movers first."""
        lines: list[str] = []
        header = (f"{'phase':28s} {'bit_cost A':>14s} {'bit_cost B':>14s} "
                  f"{'delta':>8s} {'wall A(ms)':>10s} {'wall B(ms)':>10s} "
                  f"{'delta':>8s}")
        lines.append(header)
        lines.append("-" * len(header))
        for d in self.phase_movers():
            wall_a = "-" if d.wall_ns_a is None else f"{d.wall_ns_a / 1e6:.2f}"
            wall_b = "-" if d.wall_ns_b is None else f"{d.wall_ns_b / 1e6:.2f}"
            lines.append(
                f"{d.name or '(glue)':28s} {_fmt_int(d.bit_cost_a):>14s} "
                f"{_fmt_int(d.bit_cost_b):>14s} {_fmt_rel(d.bit_rel):>8s} "
                f"{wall_a:>10s} {wall_b:>10s} {_fmt_rel(d.wall_rel):>8s}"
            )
        moved = [d for d in self.histograms if d.moved]
        if moved:
            lines.append("")
            lines.append("histogram deltas:")
            for d in moved:
                lines.append(
                    f"  {d.name}: count {d.count_a}->{d.count_b}, "
                    f"total {d.total_a}->{d.total_b} "
                    f"({_fmt_rel(d.total_rel)}), max {d.max_a}->{d.max_b}"
                )
        if self.parallel:
            lines.append("")
            lines.append("parallel rollup:")
            for key, (a, b) in sorted(self.parallel.items()):
                a_s = "-" if a is None else f"{a:.4g}"
                b_s = "-" if b is None else f"{b:.4g}"
                lines.append(f"  {key}: {a_s} -> {b_s} ({_fmt_rel(_rel(a, b))})")
        if self.lanes:
            lines.append("")
            lines.append("worker lanes:")
            for d in self.lanes:
                busy_a = ("-" if d.busy_ns_a is None
                          else f"{d.busy_ns_a / 1e6:.2f}ms")
                busy_b = ("-" if d.busy_ns_b is None
                          else f"{d.busy_ns_b / 1e6:.2f}ms")
                lines.append(
                    f"  worker-{d.lane}: busy {busy_a} -> {busy_b} "
                    f"({_fmt_rel(d.busy_rel)}), tasks "
                    f"{d.tasks_a if d.tasks_a is not None else '-'} -> "
                    f"{d.tasks_b if d.tasks_b is not None else '-'}, "
                    f"idle tail "
                    f"{_fmt_int(d.idle_tail_ns_a)} -> "
                    f"{_fmt_int(d.idle_tail_ns_b)} ns"
                )
        return "\n".join(lines)


def diff_phases(
    a: Mapping[str, Mapping[str, Any]],
    b: Mapping[str, Mapping[str, Any]],
) -> list[PhaseDelta]:
    """Per-phase deltas of two ``{phase: {bit_cost, wall_ns}}`` rollups.

    Phases present on only one side still appear (the other side's
    values are ``None``): a phase that vanished or newly appeared is
    itself an attribution signal.
    """
    out: list[PhaseDelta] = []
    for name in sorted(set(a) | set(b)):
        pa, pb = a.get(name), b.get(name)
        out.append(PhaseDelta(
            name=name,
            bit_cost_a=None if pa is None else pa.get("bit_cost"),
            bit_cost_b=None if pb is None else pb.get("bit_cost"),
            wall_ns_a=None if pa is None else pa.get("wall_ns"),
            wall_ns_b=None if pb is None else pb.get("wall_ns"),
        ))
    return out


def diff_histograms(
    a: Mapping[str, Mapping[str, Any]],
    b: Mapping[str, Mapping[str, Any]],
) -> list[HistogramDelta]:
    """Summary-statistic deltas of two ``Histogram.as_dict`` maps
    (histograms present on both sides only — a histogram that exists
    once cannot be differenced)."""
    out: list[HistogramDelta] = []
    for name in sorted(set(a) & set(b)):
        ha, hb = a[name], b[name]
        out.append(HistogramDelta(
            name=name,
            count_a=ha.get("count", 0), count_b=hb.get("count", 0),
            total_a=ha.get("total", 0), total_b=hb.get("total", 0),
            mean_a=ha.get("mean", 0.0), mean_b=hb.get("mean", 0.0),
            max_a=ha.get("max"), max_b=hb.get("max"),
        ))
    return out


def diff_parallel(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> tuple[dict[str, tuple[float | None, float | None]], list[LaneDelta]]:
    """Headline + per-lane deltas of two ``parallel_rollup`` dicts.

    Returns ``(summary, lanes)`` — both empty when either side has no
    rollup (a sequential run has no lanes to attribute).
    """
    if not a or not b:
        return {}, []
    summary = {
        key: (a.get(key), b.get(key))
        for key in ("workers", "makespan_ns", "work_ns", "speedup",
                    "efficiency", "idle_tail_fraction")
    }
    lanes: list[LaneDelta] = []
    pw_a = a.get("per_worker", {})
    pw_b = b.get("per_worker", {})
    # JSON round-trips dict keys to strings; normalize to int lanes.
    pw_a = {int(k): v for k, v in pw_a.items()}
    pw_b = {int(k): v for k, v in pw_b.items()}
    for lane in sorted(set(pw_a) | set(pw_b)):
        wa, wb = pw_a.get(lane), pw_b.get(lane)
        lanes.append(LaneDelta(
            lane=lane,
            busy_ns_a=None if wa is None else wa.get("busy_ns"),
            busy_ns_b=None if wb is None else wb.get("busy_ns"),
            tasks_a=None if wa is None else wa.get("tasks"),
            tasks_b=None if wb is None else wb.get("tasks"),
            idle_tail_ns_a=None if wa is None else wa.get("idle_tail_ns"),
            idle_tail_ns_b=None if wb is None else wb.get("idle_tail_ns"),
        ))
    return summary, lanes


def diff_runs(a: Any, b: Any) -> TraceDiff:
    """The full decomposition of two run-shaped objects.

    ``a`` and ``b`` are duck-typed: anything with ``phases`` /
    ``histograms`` / ``parallel`` mapping attributes works — both
    :class:`~repro.obs.perf.BenchArtifact` and
    :class:`~repro.obs.ledger.RunRecord` qualify.
    """
    summary, lanes = diff_parallel(
        getattr(a, "parallel", {}) or {}, getattr(b, "parallel", {}) or {}
    )
    return TraceDiff(
        phases=diff_phases(a.phases, b.phases),
        histograms=diff_histograms(a.histograms, b.histograms),
        lanes=lanes,
        parallel=summary,
    )


def attribute(diffs: Iterable[MetricDiff], td: TraceDiff) -> str:
    """The failures-first attribution table for a failed gate run.

    For every failing metric, names the dominant phase mover on the
    metric's axis ("``n25.mu8.bit_cost`` count +12.0% -> phase
    ``remainder`` bit-cost +12.3%"); non-failing rows are omitted.
    Falls back to the raw phase movers when the runs carried no phase
    rollup to attribute with.
    """
    failed = [d for d in diffs if d.failed]
    lines = ["attribution (dominant phase per failed metric):"]
    for d in sorted(failed, key=lambda d: d.name):
        dom = td.dominant_phase(d.kind)
        if dom is None:
            lines.append(
                f"  {d.name}: {d.kind} "
                f"{_fmt_rel(d.rel_delta)} — no phase rollup to attribute"
            )
        elif d.kind == "wall":
            lines.append(
                f"  {d.name}: wall {_fmt_rel(d.rel_delta)} -> phase "
                f"{dom.name!r} wall {_fmt_rel(dom.wall_rel)} "
                f"({_fmt_int(dom.wall_ns_a)} -> {_fmt_int(dom.wall_ns_b)} ns)"
            )
        else:
            lines.append(
                f"  {d.name}: {d.kind} {_fmt_rel(d.rel_delta)} -> phase "
                f"{dom.name!r} bit-cost {_fmt_rel(dom.bit_rel)} "
                f"({_fmt_int(dom.bit_cost_a)} -> {_fmt_int(dom.bit_cost_b)})"
            )
    if not failed:
        lines = ["attribution: no failing metrics"]
    lines.append("")
    lines.append(td.format_table())
    return "\n".join(lines)
