"""Append-only, schema-versioned cross-run performance ledger.

The bench artifacts (:mod:`repro.obs.perf`) capture *one* run each;
the ledger strings runs together into the repo's performance
trajectory.  Every traced/benched run appends one
:class:`RunRecord` JSONL line carrying the run's identity (command,
name, params), its environment fingerprint, the flat metrics, the
per-phase bit-cost/wall rollup, the interval histograms, the
parallel-utilization rollup, and the executor reliability counters —
everything :mod:`repro.obs.tracediff` needs to attribute a regression
between any two runs, months apart.

Two tiers under one directory (``benchmarks/results/ledger/`` by
default, ``REPRO_LEDGER_DIR`` overrides):

* ``ledger.jsonl`` — the **committed** tier: curated trajectory
  points checked into git (one per PR's smoke bench);
* ``local.jsonl`` — the **local** tier: every run on this machine,
  gitignored, append-only, torn-line tolerant.

Query via :meth:`Ledger.query` / :meth:`Ledger.get` or the ``repro
runs`` CLI (``list`` / ``show``); diff two records with ``repro diff``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.obs.perf import BenchArtifact, env_fingerprint

__all__ = [
    "SCHEMA",
    "TIERS",
    "RunRecord",
    "Ledger",
    "ledger_dir",
    "new_run_id",
    "validate_record",
    "record_from_artifact",
]

#: Version tag written into (and required of) every ledger line.
SCHEMA = "repro.run-ledger/1"

#: Tier name -> file name under the ledger directory.
TIERS = {"committed": "ledger.jsonl", "local": "local.jsonl"}


def ledger_dir() -> str:
    """The ledger directory (created if absent).

    ``REPRO_LEDGER_DIR`` overrides; otherwise ``ledger/`` under the
    bench results directory (:func:`repro.bench.report.results_dir`),
    so the committed tier lives next to the ``BENCH_*.json`` artifacts.
    """
    root = os.environ.get("REPRO_LEDGER_DIR")
    if root is None:
        from repro.bench.report import results_dir

        root = os.path.join(results_dir(), "ledger")
    os.makedirs(root, exist_ok=True)
    return root


def new_run_id() -> str:
    """A unique, time-sortable run id: ``<unix-ns hex>-<pid hex>-<rand>``."""
    return (f"{time.time_ns():x}-{os.getpid():x}-"
            f"{os.urandom(2).hex()}")


@dataclass
class RunRecord:
    """One run's ledger entry, in comparable, versioned form.

    ``metrics`` uses the artifact shape (``{"kind", "value"}`` per
    name); ``phases`` maps phase names to ``{"bit_cost", "wall_ns"}``;
    ``parallel`` is a :func:`repro.obs.rollup.parallel_rollup` dict
    (``{}`` for sequential runs); ``reliability`` is the zero-filled
    :func:`repro.obs.metrics.reliability_rollup` counter dict.
    """

    command: str
    name: str = ""
    run_id: str = field(default_factory=new_run_id)
    time_unix: float = field(default_factory=time.time)
    params: dict[str, Any] = field(default_factory=dict)
    env: dict[str, Any] = field(default_factory=env_fingerprint)
    metrics: dict[str, dict[str, Any]] = field(default_factory=dict)
    phases: dict[str, dict[str, Any]] = field(default_factory=dict)
    histograms: dict[str, dict[str, Any]] = field(default_factory=dict)
    parallel: dict[str, Any] = field(default_factory=dict)
    reliability: dict[str, int] = field(default_factory=dict)

    def add_metric(self, name: str, value: float, kind: str = "count") -> None:
        """Record one named scalar (artifact-shaped)."""
        if kind not in ("count", "wall"):
            raise ValueError(f"unknown metric kind {kind!r}")
        self.metrics[name] = {"kind": kind, "value": value}

    def metric(self, name: str) -> float:
        """The recorded value of metric ``name`` (KeyError if absent)."""
        return self.metrics[name]["value"]

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dump (inverse of :meth:`from_dict`)."""
        return {
            "schema": SCHEMA,
            "run_id": self.run_id,
            "command": self.command,
            "name": self.name,
            "time_unix": self.time_unix,
            "params": dict(self.params),
            "env": dict(self.env),
            "metrics": {k: dict(v) for k, v in sorted(self.metrics.items())},
            "phases": dict(self.phases),
            "histograms": dict(self.histograms),
            "parallel": dict(self.parallel),
            "reliability": dict(self.reliability),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a validated record from a parsed JSON object."""
        validate_record(d)
        return cls(
            command=d["command"],
            name=d.get("name", ""),
            run_id=d["run_id"],
            time_unix=d.get("time_unix", 0.0),
            params=dict(d.get("params", {})),
            env=dict(d.get("env", {})),
            metrics={k: dict(v) for k, v in d.get("metrics", {}).items()},
            phases=dict(d.get("phases", {})),
            histograms=dict(d.get("histograms", {})),
            parallel=dict(d.get("parallel", {})),
            reliability=dict(d.get("reliability", {})),
        )


def validate_record(d: Mapping[str, Any]) -> None:
    """Schema check for one parsed ledger line; raises ``ValueError``."""
    if not isinstance(d, Mapping):
        raise ValueError("ledger record must be a JSON object")
    if d.get("schema") != SCHEMA:
        raise ValueError(
            f"unsupported ledger schema {d.get('schema')!r} "
            f"(expected {SCHEMA!r})"
        )
    for key in ("run_id", "command"):
        if not d.get(key) or not isinstance(d[key], str):
            raise ValueError(f"ledger record needs a nonempty string {key!r}")
    metrics = d.get("metrics", {})
    if not isinstance(metrics, Mapping):
        raise ValueError("'metrics' must be an object")
    for mname, m in metrics.items():
        if (not isinstance(m, Mapping) or "value" not in m
                or m.get("kind") not in ("count", "wall")):
            raise ValueError(f"metric {mname!r} must be {{kind, value}}")


def record_from_artifact(
    artifact: BenchArtifact,
    command: str = "bench",
    registry: Any = None,
) -> RunRecord:
    """A ledger record mirroring one bench artifact.

    Copies the artifact's params/env/metrics/phases/histograms and its
    parallel rollup; ``registry`` (the executor's
    :class:`~repro.obs.metrics.MetricsRegistry`, when the run had one)
    fills the reliability counter block.
    """
    from repro.obs.metrics import reliability_rollup

    rec = RunRecord(
        command=command,
        name=artifact.name,
        params=dict(artifact.params),
        env=dict(artifact.env),
        metrics={k: dict(v) for k, v in artifact.metrics.items()},
        phases={k: dict(v) for k, v in artifact.phases.items()},
        histograms=dict(artifact.histograms),
        parallel=dict(artifact.parallel),
    )
    if registry is not None:
        rec.reliability = reliability_rollup(registry)
    else:
        # The reliability vocabulary lives in the artifact metrics too
        # (``executor.*`` counters) when the bench ran a pool stage.
        rec.reliability = {
            k: int(v["value"]) for k, v in artifact.metrics.items()
            if k.startswith("executor.") and v["kind"] == "count"
        }
    return rec


class Ledger:
    """Reader/appender over the two-tier JSONL run ledger.

    ``root`` defaults to :func:`ledger_dir`.  Reads are torn-line
    tolerant: a crash mid-append leaves at most one unparseable final
    line, which is skipped (the same guarantee as
    :class:`repro.resilience.checkpoint.BatchCheckpoint`).
    """

    def __init__(self, root: str | None = None):
        self.root = root if root is not None else ledger_dir()
        os.makedirs(self.root, exist_ok=True)

    def path(self, tier: str) -> str:
        """The JSONL file backing ``tier`` (``committed`` / ``local``)."""
        if tier not in TIERS:
            raise ValueError(f"unknown ledger tier {tier!r}; "
                             f"known: {sorted(TIERS)}")
        return os.path.join(self.root, TIERS[tier])

    def append(self, record: RunRecord, tier: str = "local") -> str:
        """Durably append one record to ``tier``; returns the path."""
        path = self.path(tier)
        line = json.dumps(record.to_dict(), separators=(",", ":"),
                          sort_keys=True)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return path

    def records(self, tier: str = "all") -> list[RunRecord]:
        """All records of ``tier`` (``all`` merges committed + local),
        oldest first; invalid or torn lines are skipped."""
        tiers = sorted(TIERS) if tier == "all" else [tier]
        out: list[RunRecord] = []
        for t in tiers:
            path = self.path(t)
            if not os.path.exists(path):
                continue
            with open(path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        out.append(RunRecord.from_dict(json.loads(line)))
                    except (json.JSONDecodeError, ValueError):
                        continue  # torn tail / foreign line
        out.sort(key=lambda r: r.time_unix)
        return out

    def query(
        self,
        command: str | None = None,
        name: str | None = None,
        tier: str = "all",
        limit: int | None = None,
    ) -> list[RunRecord]:
        """Filtered records, **newest first** (CLI order).

        ``command`` / ``name`` filter exactly; ``limit`` keeps the most
        recent N after filtering.
        """
        recs = [
            r for r in reversed(self.records(tier))
            if (command is None or r.command == command)
            and (name is None or r.name == name)
        ]
        return recs[:limit] if limit is not None else recs

    def get(self, run_id: str, tier: str = "all") -> RunRecord:
        """The record whose ``run_id`` matches (unique prefixes allowed).

        Raises ``KeyError`` when nothing matches and ``ValueError``
        when a prefix is ambiguous.
        """
        matches = [r for r in self.records(tier)
                   if r.run_id == run_id or r.run_id.startswith(run_id)]
        exact = [r for r in matches if r.run_id == run_id]
        if exact:
            return exact[-1]
        if not matches:
            raise KeyError(f"no ledger record matches {run_id!r}")
        ids = {r.run_id for r in matches}
        if len(ids) > 1:
            raise ValueError(
                f"run id prefix {run_id!r} is ambiguous: {sorted(ids)}"
            )
        return matches[-1]
