"""Opt-in low-overhead sampling profiler with collapsed-stack output.

A :class:`SamplingProfiler` runs a daemon timer thread that samples one
target thread's Python stack every ``interval`` seconds via
``sys._current_frames()`` — no tracing hooks, no interpreter slowdown
between samples, so overhead is bounded by ``samples/sec x cost of one
stack walk`` (well under 5% at the 5 ms default on any real workload).

Samples are ``(t_ns, stack)`` pairs where ``stack`` is a root-first
tuple of ``module:function`` frames.  :func:`collapse` folds them into
the classic collapsed-stack mapping (``"a;b;c" -> count``) consumed by
flamegraph tooling (``flamegraph.pl``, speedscope, inferno);
:func:`write_collapsed` emits the one-line-per-stack text file.

Two integration points:

* the executor's worker task wrapper starts one profiler per worker
  process (lazily, on the first profiled task) and returns each task's
  folded samples with the task result — the parent merges them into
  :meth:`repro.sched.executor.ParallelRootFinder.profile_collapsed`;
* timestamped samples from the parent process fold into the Chrome
  trace as instant events on a dedicated ``profiler`` lane
  (:func:`profile_chrome_events`), putting hot-stack samples next to
  the span timeline.

Every ``start()`` takes one immediate anchor sample, so even a
microsecond-lived profiled region contributes at least one stack and a
profiled run's collapsed output is never empty.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import IO, Any, Iterable, Mapping

__all__ = [
    "SamplingProfiler",
    "collapse",
    "merge_collapsed",
    "write_collapsed",
    "read_collapsed",
    "profile_chrome_events",
    "DEFAULT_INTERVAL",
]

#: Default sampling period in seconds (200 Hz): coarse enough to stay
#: far under the <5% overhead budget, fine enough to catch ms-scale
#: phases.
DEFAULT_INTERVAL = 0.005


def _format_frame(frame: Any) -> str:
    """One stack entry: ``module:function`` (collapsed-format safe)."""
    mod = frame.f_globals.get("__name__", "?")
    name = frame.f_code.co_name
    return f"{mod}:{name}".replace(";", "_").replace(" ", "_")


def _walk_stack(frame: Any, limit: int) -> tuple[str, ...]:
    out: list[str] = []
    while frame is not None and len(out) < limit:
        out.append(_format_frame(frame))
        frame = frame.f_back
    out.reverse()  # collapsed stacks are root-first
    return tuple(out)


class SamplingProfiler:
    """Samples one thread's stack on a timer; collects ``(t_ns, stack)``.

    Parameters
    ----------
    interval:
        Seconds between samples (default :data:`DEFAULT_INTERVAL`).
    thread_id:
        ``threading.get_ident()`` of the thread to sample; defaults to
        the thread that calls :meth:`start`.
    max_depth:
        Stack-walk depth cap (frames beyond it are dropped from the
        root end).

    The profiler is restartable: ``start``/``stop`` pairs may repeat,
    and :meth:`drain` hands back (and clears) the samples collected so
    far, so a long-lived worker can attribute samples per task.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        thread_id: int | None = None,
        max_depth: int = 64,
    ):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.interval = interval
        self.thread_id = thread_id
        self.max_depth = max_depth
        self.samples: list[tuple[int, tuple[str, ...]]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        """True while the sampler thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def sample_once(self) -> None:
        """Take one sample of the target thread right now."""
        tid = self.thread_id
        if tid is None:
            tid = threading.get_ident()
        frame = sys._current_frames().get(tid)
        if frame is None:
            return
        stack = _walk_stack(frame, self.max_depth)
        if stack:
            with self._lock:
                self.samples.append((time.perf_counter_ns(), stack))

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def start(self) -> "SamplingProfiler":
        """Begin sampling (idempotent); takes one immediate anchor sample.

        The target defaults to the calling thread, which is what both
        integration points want: the worker wrapper and the parent
        dispatch loop each profile themselves.
        """
        if self.running:
            return self
        if self.thread_id is None:
            self.thread_id = threading.get_ident()
        self.sample_once()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampler thread (idempotent; samples are kept)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=1.0)
        self._thread = None

    def drain(self) -> list[tuple[int, tuple[str, ...]]]:
        """Hand back all samples collected so far and clear the buffer."""
        with self._lock:
            out, self.samples = self.samples, []
        return out

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def collapse(
    samples: Iterable[tuple[int, tuple[str, ...]]],
) -> dict[str, int]:
    """Fold timestamped samples into ``{"root;child;leaf": count}``."""
    out: dict[str, int] = {}
    for _t, stack in samples:
        key = ";".join(stack)
        out[key] = out.get(key, 0) + 1
    return out


def merge_collapsed(*folded: Mapping[str, int]) -> dict[str, int]:
    """Sum several collapsed-stack mappings into one."""
    out: dict[str, int] = {}
    for d in folded:
        for k, v in d.items():
            out[k] = out.get(k, 0) + v
    return out


def write_collapsed(
    path_or_file: str | IO[str], folded: Mapping[str, int]
) -> None:
    """Write the flamegraph.pl input format: ``stack count`` per line,
    sorted by stack for reproducible diffs."""
    payload = "".join(
        f"{stack} {count}\n" for stack, count in sorted(folded.items())
    )
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            fh.write(payload)
    else:
        path_or_file.write(payload)


def read_collapsed(path: str) -> dict[str, int]:
    """Parse a collapsed-stack file back into its mapping."""
    out: dict[str, int] = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            stack, _, count = line.rpartition(" ")
            out[stack] = out.get(stack, 0) + int(count)
    return out


def profile_chrome_events(
    samples: Iterable[tuple[int, tuple[str, ...]]],
    t0: int,
    pid: int = 1,
    tid: int = 9999,
) -> list[dict[str, Any]]:
    """Timestamped samples as Chrome-trace instant events.

    One ``"ph": "i"`` event per sample on lane ``tid``, named by the
    leaf function and carrying the full collapsed stack in ``args`` —
    hot-function samples inspectable right under the span lanes.
    ``t0`` is the trace epoch in nanoseconds (the same origin
    ``spans_to_chrome`` subtracts).
    """
    events: list[dict[str, Any]] = []
    for t_ns, stack in samples:
        events.append({
            "ph": "i", "s": "t", "pid": pid, "tid": tid,
            "name": stack[-1] if stack else "?", "cat": "profile",
            "ts": (t_ns - t0) / 1000.0,
            "args": {"stack": ";".join(stack)},
        })
    return events
