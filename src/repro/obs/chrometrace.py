"""Chrome trace-event export (open in Perfetto / ``chrome://tracing``).

Two sources, one format:

* **real runs** — the spans of a :class:`repro.obs.trace.Tracer`
  become complete (``"ph": "X"``) events on one lane per
  process/worker track, timestamps in microseconds of wall time;
* **simulated schedules** — a traced
  :class:`repro.sched.simulator.ScheduleResult` becomes one lane per
  simulated processor, timestamps in the paper's bit-operation units
  (rendered as microseconds, since the format has no unit concept).
  This turns the Figures 9-13 makespan numbers into inspectable
  timelines: the p=16 droop is literally visible as idle lane tails.

The output is the plain ``{"traceEvents": [...]}`` JSON object defined
by the Trace Event Format; load it via Perfetto's "Open trace file".
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable, Mapping, Sequence

from repro.obs.rollup import worker_busy_intervals
from repro.obs.trace import Span

# ``ScheduleResult`` is duck-typed (``.trace``/``.processors``) rather
# than imported: repro.obs sits *below* repro.sched in the layering so
# the core algorithm modules can depend on tracing without cycles.

__all__ = [
    "spans_to_chrome",
    "worker_busy_series",
    "schedule_to_chrome",
    "schedules_to_chrome",
    "write_chrome_trace",
]


def _meta(pid: int, tid: int, name: str, what: str) -> dict[str, Any]:
    return {"ph": "M", "pid": pid, "tid": tid, "name": what,
            "args": {"name": name}}


def _sort_meta(pid: int, tid: int, index: int) -> dict[str, Any]:
    """Pin a lane's display position: viewers otherwise fall back to
    first-appearance order, which depends on dict iteration."""
    return {"ph": "M", "pid": pid, "tid": tid, "name": "thread_sort_index",
            "args": {"sort_index": index}}


def _track_labels(spans: Iterable[Span]) -> dict[int, str]:
    """Stable, human-readable lane names keyed by track index.

    The main process is ``main``; each worker lane is named by its
    track index and — when the adopted spans carry a ``pid`` attr — the
    worker's OS pid, so two traces of the same pool line up by worker
    index while remaining identifiable (``worker-2 (pid 4711)``).
    """
    labels: dict[int, str] = {}
    pids: dict[int, int] = {}
    for sp in spans:
        if sp.track != 0 and sp.track not in pids:
            pid = sp.attrs.get("pid")
            if pid is not None:
                pids[sp.track] = pid
    for tr in sorted({sp.track for sp in spans}):
        if tr == 0:
            labels[tr] = "main"
        elif tr in pids:
            labels[tr] = f"worker-{tr} (pid {pids[tr]})"
        else:
            labels[tr] = f"worker-{tr}"
    return labels


def worker_busy_series(
    spans: Iterable[Span],
) -> dict[int, list[tuple[int, int]]]:
    """Per-worker busy 0/1 series derived from adopted task spans.

    For each worker track the per-task *root* spans (spans whose parent
    sits on a different track — one per pool task) yield merged
    ``(t_ns, 0|1)`` transitions: 1 when the worker picks up a task,
    0 when its task stream goes idle.  This is the real-run analogue of
    the simulator's per-processor lanes: the p=16-style idle tails the
    paper analyzes become visible as flat-zero stretches.
    """
    series: dict[int, list[tuple[int, int]]] = {}
    for tr, ivals in worker_busy_intervals(spans).items():
        out: list[tuple[int, int]] = []
        for start, end in ivals:
            out.append((start, 1))
            out.append((end, 0))
        series[tr] = out
    return series


def spans_to_chrome(
    spans: Iterable[Span],
    pid: int = 1,
    process_name: str = "repro",
    counters: Iterable[tuple[int, str, float]] | None = None,
    worker_busy: bool = True,
    profile: Iterable[tuple[int, tuple[str, ...]]] | None = None,
) -> dict[str, Any]:
    """Convert traced spans to a Chrome trace-event object.

    Each span track (main process, adopted workers) becomes one thread
    lane with a stable human-readable name (``main``, ``worker-<track>
    (pid N)``) and an explicit ``thread_sort_index`` pinned to the
    worker index, so lane order is deterministic instead of
    dict-iteration-dependent.  Span ``args`` carry the phase, attrs,
    and the span's bit cost so the cost currency is inspectable next to
    wall time.

    ``counters`` are ``(t_ns, name, value)`` samples (e.g.
    ``Tracer.counters`` filled by the executor's live telemetry); each
    named series becomes a ``"ph": "C"`` counter lane.  With
    ``worker_busy`` (the default), per-worker busy/idle lanes derived
    from adopted task spans (:func:`worker_busy_series`) are appended
    as ``worker-<track> busy`` counters — together these put queue
    depth and worker utilization next to the span timeline.

    ``profile`` folds timestamped sampling-profiler samples
    (:class:`repro.obs.profile.SamplingProfiler` ``(t_ns, stack)``
    pairs, same clock as the spans) into a dedicated ``profiler`` lane
    of instant events, hot stacks inspectable under the spans.
    """
    spans = [sp for sp in spans if sp.end_ns is not None]
    events: list[dict[str, Any]] = [_meta(pid, 0, process_name, "process_name")]
    labels = _track_labels(spans)
    for index, tr in enumerate(sorted(labels)):
        events.append(_meta(pid, tr, labels[tr], "thread_name"))
        events.append(_sort_meta(pid, tr, index))
    counters = list(counters) if counters is not None else []
    profile = list(profile) if profile is not None else []
    t0 = min(
        (sp.start_ns for sp in spans),
        default=min(
            (t for t, _, _ in counters),
            default=min((t for t, _ in profile), default=0),
        ),
    )
    for sp in spans:
        args: dict[str, Any] = {"phase": sp.phase, **sp.attrs}
        if sp.cost:
            args["bit_cost"] = sp.bit_cost
            args["mul_count"] = sp.mul_count
        events.append({
            "ph": "X",
            "pid": pid,
            "tid": sp.track,
            "name": sp.name,
            "cat": sp.phase or "span",
            "ts": (sp.start_ns - t0) / 1000.0,
            "dur": sp.wall_ns / 1000.0,
            "args": args,
        })
    for t_ns, name, value in counters:
        events.append({
            "ph": "C", "pid": pid, "tid": 0, "name": name,
            "cat": "telemetry", "ts": (t_ns - t0) / 1000.0,
            "args": {"value": value},
        })
    if worker_busy:
        for tr, samples in sorted(worker_busy_series(spans).items()):
            for t_ns, busy in samples:
                events.append({
                    "ph": "C", "pid": pid, "tid": tr,
                    "name": f"worker-{tr} busy", "cat": "telemetry",
                    "ts": (t_ns - t0) / 1000.0, "args": {"busy": busy},
                })
    if profile:
        from repro.obs.profile import profile_chrome_events

        prof_tid = max(labels, default=0) + 1
        events.append(_meta(pid, prof_tid, "profiler", "thread_name"))
        events.append(_sort_meta(pid, prof_tid, len(labels)))
        events.extend(profile_chrome_events(profile, t0, pid=pid,
                                            tid=prof_tid))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def schedule_to_chrome(
    result: Any,
    tasks: Sequence[Any] | None = None,
    pid: int = 1,
    process_name: str | None = None,
) -> dict[str, Any]:
    """Convert one traced simulated schedule to a Chrome trace object.

    Requires ``simulate(..., keep_trace=True)``.  One thread lane per
    simulated processor; each task slice is a complete event whose
    duration is its bit cost (shown as microseconds).  When the graph's
    ``tasks`` list is given, events are named/categorized by task kind
    and labeled with the task's label.
    """
    if result.trace is None:
        raise ValueError("simulate(..., keep_trace=True) required")
    name = process_name or f"sim p={result.processors}"
    events: list[dict[str, Any]] = [_meta(pid, 0, name, "process_name")]
    for proc in range(result.processors):
        events.append(_meta(pid, proc, f"cpu{proc}", "thread_name"))
    for start, end, proc, tid in result.trace:
        if tasks is not None:
            task = tasks[tid]
            ev_name = task.kind.value
            args = {"task": tid, "label": task.label, "cost": end - start}
        else:
            ev_name = f"task{tid}"
            args = {"task": tid, "cost": end - start}
        events.append({
            "ph": "X",
            "pid": pid,
            "tid": proc,
            "name": ev_name,
            "cat": "sim",
            "ts": float(start),
            "dur": float(max(end - start, 1)),
            "args": args,
        })
    return {"traceEvents": events}


def schedules_to_chrome(
    curve: Mapping[int, Any], tasks: Sequence[Any] | None = None
) -> dict[str, Any]:
    """Merge several processor counts into one trace, one pid each.

    ``curve`` is the :func:`repro.sched.simulator.speedup_curve` shape:
    ``{processor_count: ScheduleResult}``.  Perfetto shows each count
    as its own process group, so the whole Tables 3-7 sweep is one
    file.
    """
    events: list[dict[str, Any]] = []
    for pcount in sorted(curve):
        sub = schedule_to_chrome(curve[pcount], tasks, pid=pcount)
        events.extend(sub["traceEvents"])
    return {"traceEvents": events}


def write_chrome_trace(path_or_file: str | IO[str], trace: dict[str, Any]) -> None:
    """Serialize a trace object produced by the converters above."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            json.dump(trace, fh)
    else:
        json.dump(trace, path_or_file)
