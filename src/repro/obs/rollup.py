"""Span rollups: exclusive wall time per phase, per tree level.

A span's *exclusive* (self) time is its duration minus its children's
— the quantity that sums to the root span's duration and therefore
decomposes a run the way the paper's per-phase tables decompose bit
cost.  These helpers power the bench runner's wall-time breakdown and
the ``tree level`` rollups of :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.trace import Span

__all__ = [
    "self_wall_ns",
    "phase_wall_ns",
    "level_wall_ns",
    "worker_busy_intervals",
    "parallel_rollup",
]


def self_wall_ns(spans: Iterable[Span]) -> dict[int, int]:
    """Exclusive nanoseconds per span id (duration minus children).

    Adopted worker spans live on their own clock; they subtract from
    their re-parented ancestor like any other child, which attributes
    pool wait time to the worker lanes rather than the parent.
    """
    spans = list(spans)
    out = {sp.sid: sp.wall_ns for sp in spans if sp.end_ns is not None}
    for sp in spans:
        if sp.parent is not None and sp.parent in out and sp.end_ns is not None:
            out[sp.parent] -= sp.wall_ns
    return out


def phase_wall_ns(spans: Iterable[Span]) -> dict[str, int]:
    """Exclusive wall nanoseconds summed per span phase path.

    Spans with no phase are grouped under ``""`` (the glue between the
    phases — should be small; if it is not, instrumentation is
    missing).  Values sum to the total duration of the root spans.
    """
    spans = list(spans)
    self_ns = self_wall_ns(spans)
    out: dict[str, int] = {}
    for sp in spans:
        if sp.sid not in self_ns:
            continue
        out[sp.phase] = out.get(sp.phase, 0) + self_ns[sp.sid]
    return out


def level_wall_ns(spans: Iterable[Span]) -> dict[int, int]:
    """Exclusive wall nanoseconds per interleaving-tree level.

    Uses the ``level`` attr the root finder stamps on per-node spans;
    spans without it are ignored.  This is the wall-time analogue of
    the Section 4.2 per-level work decomposition.
    """
    spans = list(spans)
    self_ns = self_wall_ns(spans)
    out: dict[int, int] = {}
    for sp in spans:
        lvl = sp.attrs.get("level")
        if lvl is None or sp.sid not in self_ns:
            continue
        out[lvl] = out.get(lvl, 0) + self_ns[sp.sid]
    return out


def worker_busy_intervals(
    spans: Iterable[Span],
) -> dict[int, list[tuple[int, int]]]:
    """Merged busy ``(start_ns, end_ns)`` intervals per worker track.

    A worker's busy time is the union of its per-task *root* spans —
    adopted spans whose parent sits on a different track (the parent is
    the main lane's dispatch span); inner solver spans are already
    covered by their task root.  Overlapping or adjacent task spans are
    coalesced so the interval list is disjoint and sorted.
    """
    spans = [sp for sp in spans if sp.end_ns is not None]
    track_of = {sp.sid: sp.track for sp in spans}
    raw: dict[int, list[tuple[int, int]]] = {}
    for sp in spans:
        if sp.track == 0:
            continue
        if sp.parent is not None and track_of.get(sp.parent) == sp.track:
            continue
        raw.setdefault(sp.track, []).append((sp.start_ns, sp.end_ns))
    out: dict[int, list[tuple[int, int]]] = {}
    for tr, ivals in raw.items():
        ivals.sort()
        merged: list[list[int]] = []
        for start, end in ivals:
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        out[tr] = [(s, e) for s, e in merged]
    return out


def parallel_rollup(spans: Iterable[Span]) -> dict:
    """Post-run utilization / parallel-efficiency summary of a traced
    :class:`~repro.sched.executor.ParallelRootFinder` run.

    The real-run counterpart of the simulator's makespan statistics:

    * ``makespan_ns`` — the busy window across all worker lanes
      (first task start to last task end);
    * ``work_ns`` — total busy nanoseconds, the measured ``T1`` proxy;
    * ``speedup`` / ``efficiency`` — ``work / makespan`` and that
      divided by the worker count (perfect pipelining gives
      efficiency 1.0);
    * ``idle_tail_fraction`` — mean over workers of the trailing idle
      stretch (after the worker's last task, before the makespan ends)
      as a fraction of the makespan: the p=16-style droop of the
      paper's Figures 9-13, measured on real processes;
    * ``per_worker`` — ``{track: {busy_ns, tasks, utilization,
      idle_tail_ns}}``.

    Returns ``{}`` when the spans contain no worker lanes (sequential
    or untraced run).
    """
    spans = list(spans)
    busy = worker_busy_intervals(spans)
    if not busy:
        return {}
    t_start = min(iv[0][0] for iv in busy.values())
    t_end = max(iv[-1][1] for iv in busy.values())
    makespan = max(t_end - t_start, 1)
    per_worker: dict[int, dict] = {}
    work = 0
    idle_tail_total = 0
    for tr, ivals in sorted(busy.items()):
        busy_ns = sum(e - s for s, e in ivals)
        idle_tail = t_end - ivals[-1][1]
        work += busy_ns
        idle_tail_total += idle_tail
        per_worker[tr] = {
            "busy_ns": busy_ns,
            "tasks": len(ivals),
            "utilization": busy_ns / makespan,
            "idle_tail_ns": idle_tail,
        }
    n = len(per_worker)
    return {
        "workers": n,
        "makespan_ns": makespan,
        "work_ns": work,
        "speedup": work / makespan,
        "efficiency": work / (n * makespan),
        "idle_tail_fraction": idle_tail_total / (n * makespan),
        "per_worker": per_worker,
    }
