"""Span rollups: exclusive wall time per phase, per tree level.

A span's *exclusive* (self) time is its duration minus its children's
— the quantity that sums to the root span's duration and therefore
decomposes a run the way the paper's per-phase tables decompose bit
cost.  These helpers power the bench runner's wall-time breakdown and
the ``tree level`` rollups of :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.trace import Span

__all__ = ["self_wall_ns", "phase_wall_ns", "level_wall_ns"]


def self_wall_ns(spans: Iterable[Span]) -> dict[int, int]:
    """Exclusive nanoseconds per span id (duration minus children).

    Adopted worker spans live on their own clock; they subtract from
    their re-parented ancestor like any other child, which attributes
    pool wait time to the worker lanes rather than the parent.
    """
    spans = list(spans)
    out = {sp.sid: sp.wall_ns for sp in spans if sp.end_ns is not None}
    for sp in spans:
        if sp.parent is not None and sp.parent in out and sp.end_ns is not None:
            out[sp.parent] -= sp.wall_ns
    return out


def phase_wall_ns(spans: Iterable[Span]) -> dict[str, int]:
    """Exclusive wall nanoseconds summed per span phase path.

    Spans with no phase are grouped under ``""`` (the glue between the
    phases — should be small; if it is not, instrumentation is
    missing).  Values sum to the total duration of the root spans.
    """
    spans = list(spans)
    self_ns = self_wall_ns(spans)
    out: dict[str, int] = {}
    for sp in spans:
        if sp.sid not in self_ns:
            continue
        out[sp.phase] = out.get(sp.phase, 0) + self_ns[sp.sid]
    return out


def level_wall_ns(spans: Iterable[Span]) -> dict[int, int]:
    """Exclusive wall nanoseconds per interleaving-tree level.

    Uses the ``level`` attr the root finder stamps on per-node spans;
    spans without it are ignored.  This is the wall-time analogue of
    the Section 4.2 per-level work decomposition.
    """
    spans = list(spans)
    self_ns = self_wall_ns(spans)
    out: dict[int, int] = {}
    for sp in spans:
        lvl = sp.attrs.get("level")
        if lvl is None or sp.sid not in self_ns:
            continue
        out[lvl] = out.get(lvl, 0) + self_ns[sp.sid]
    return out
