"""Structured JSONL run logs.

One traced run writes one JSON object per line:

========================  ====================================================
``ev``                    meaning / extra fields
========================  ====================================================
``run``                   header: ``command``, ``time_unix``, input shape
                          (degree, ``mu_bits``, strategy, ...)
``span_open``             ``id``, ``name``, ``phase``, ``depth``, ``parent``,
                          ``ts_ns``
``span_close``            ``id``, ``name``, ``phase``, ``wall_ns``,
                          ``mul_count``, ``bit_cost``, ``phases`` (per
                          cost-phase ``[muls, mul_bits, divs, div_bits,
                          adds, add_bits]`` deltas)
``interval_case``         one per interval problem: ``node``, ``gap``,
                          ``case`` (``"1"``/``"2a"``/``"2b"``/``"2c"``) and,
                          for case 2c, the sieve/bisection/Newton step counts
``hybrid_solve``          per 2c solve: phase step counts and the strategy
``run_end``               footer: full per-phase ``CostCounter`` totals and
                          the :class:`~repro.core.sieve.IntervalStats` fields
========================  ====================================================

The log is append-only and crash-tolerant (each line is complete JSON);
:func:`read_events` and :func:`validate_events` are the programmatic
consumers used by the tests and the CI smoke job.
"""

from __future__ import annotations

import json
import time
from typing import IO, Any, Iterable

from repro.costmodel.counter import CostCounter
from repro.obs.trace import Span

__all__ = ["EventLog", "read_events", "validate_events"]


def _phases_payload(cost: dict[str, Any] | None) -> dict[str, list[int]]:
    return {
        ph: [st.mul_count, st.mul_bit_cost, st.div_count,
             st.div_bit_cost, st.add_count, st.add_bit_cost]
        for ph, st in (cost or {}).items()
    }


class EventLog:
    """Streaming JSONL sink; plugs into :class:`repro.obs.trace.Tracer`.

    Accepts a path (opened and owned) or any writable text file object
    (borrowed).  Usable as a context manager.
    """

    def __init__(self, path_or_file: str | IO[str]):
        if isinstance(path_or_file, str):
            self._fh: IO[str] = open(path_or_file, "w", encoding="utf-8")
            self._owned = True
        else:
            self._fh = path_or_file
            self._owned = False

    # -- raw line ------------------------------------------------------------
    def write(self, obj: dict[str, Any]) -> None:
        """Append one event object as a single JSON line."""
        self._fh.write(json.dumps(obj, separators=(",", ":")) + "\n")

    # -- well-known events ----------------------------------------------------
    def run_header(self, command: str, **fields: Any) -> None:
        """First line of the log: what run this is."""
        self.write({"ev": "run", "command": command,
                    "time_unix": time.time(), **fields})

    def span_open(self, span: Span) -> None:
        """Tracer callback: a span opened."""
        self.write({
            "ev": "span_open", "id": span.sid, "name": span.name,
            "phase": span.phase, "depth": span.depth, "parent": span.parent,
            "ts_ns": span.start_ns, **({"attrs": span.attrs} if span.attrs else {}),
        })

    def span_close(self, span: Span) -> None:
        """Tracer callback: a span closed; costs are final here."""
        self.write({
            "ev": "span_close", "id": span.sid, "name": span.name,
            "phase": span.phase, "wall_ns": span.wall_ns,
            "mul_count": span.mul_count, "bit_cost": span.bit_cost,
            "phases": _phases_payload(span.cost),
        })

    def event(self, name: str, fields: dict[str, Any]) -> None:
        """Tracer callback: an instantaneous event."""
        self.write({"ev": name, **fields})

    def run_end(self, counter: CostCounter | None = None,
                stats: Any | None = None, **fields: Any) -> None:
        """Footer: authoritative per-phase totals for cross-checking spans."""
        obj: dict[str, Any] = {"ev": "run_end", **fields}
        if counter is not None:
            obj["phases"] = {
                ph: [st.mul_count, st.mul_bit_cost, st.div_count,
                     st.div_bit_cost, st.add_count, st.add_bit_cost]
                for ph, st in counter.stats.items()
            }
            obj["total_bit_cost"] = counter.total_bit_cost
            obj["mul_count"] = counter.mul_count
        if stats is not None:
            obj["interval_stats"] = {
                k: getattr(stats, k)
                for k in ("evaluations", "preinterval_evals", "sieve_evals",
                          "bisection_evals", "newton_evals", "newton_iters",
                          "sieve_rounds", "solves", "case1", "case2a",
                          "case2b", "case2c")
            }
        self.write(obj)

    def close(self) -> None:
        """Flush, and close the file if this log opened it."""
        self._fh.flush()
        if self._owned:
            self._fh.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_events(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL event log back into a list of dicts.

    A syntactically broken line fails with its file position
    (``path:lineno``) and a truncated copy of the offending text, so a
    corrupted log points at itself.
    """
    out = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                out.append(json.loads(stripped))
            except json.JSONDecodeError as e:
                raise ValueError(
                    f"{path}:{lineno}: invalid JSON ({e.msg}): "
                    f"{_truncated(stripped)}"
                ) from e
    return out


def _truncated(payload: Any, limit: int = 120) -> str:
    """A bounded rendering of one event for error messages."""
    text = payload if isinstance(payload, str) else json.dumps(
        payload, separators=(",", ":"), default=repr
    )
    return text if len(text) <= limit else text[: limit - 3] + "..."


def validate_events(events: Iterable[dict[str, Any]]) -> None:
    """Schema check for one run's event list; raises ``ValueError``.

    Enforces: a ``run`` header comes first; every ``span_open`` has a
    matching ``span_close`` (and vice versa); and when a ``run_end``
    footer with per-phase totals is present, the cost deltas of the
    *top-level* spans sum exactly to those totals — i.e. the trace
    accounts for every charged bit operation.

    Every structural failure is reported with the offending event's
    line number (events are one per line in an :class:`EventLog` file)
    and a truncated copy of its payload.
    """
    events = list(events)
    if not events:
        raise ValueError("empty event log")
    if events[0].get("ev") != "run":
        raise ValueError(
            "first event must be the 'run' header "
            f"(line 1: {_truncated(events[0])})"
        )

    opened: dict[int, dict[str, Any]] = {}
    open_line: dict[int, int] = {}
    closed: dict[int, dict[str, Any]] = {}
    for lineno, ev in enumerate(events, 1):
        kind = ev.get("ev")
        if kind == "span_open":
            if ev["id"] in opened:
                raise ValueError(
                    f"span {ev['id']} opened twice "
                    f"(line {lineno}: {_truncated(ev)}; first opened at "
                    f"line {open_line[ev['id']]})"
                )
            opened[ev["id"]] = ev
            open_line[ev["id"]] = lineno
        elif kind == "span_close":
            if ev["id"] not in opened:
                raise ValueError(
                    f"span {ev['id']} closed but never opened "
                    f"(line {lineno}: {_truncated(ev)})"
                )
            if ev["id"] in closed:
                raise ValueError(
                    f"span {ev['id']} closed twice "
                    f"(line {lineno}: {_truncated(ev)})"
                )
            closed[ev["id"]] = ev
    unclosed = set(opened) - set(closed)
    if unclosed:
        first = min(unclosed, key=lambda sid: open_line[sid])
        raise ValueError(
            f"spans never closed: {sorted(unclosed)} (span {first} opened "
            f"at line {open_line[first]}: {_truncated(opened[first])})"
        )

    footers = [(n, ev) for n, ev in enumerate(events, 1)
               if ev.get("ev") == "run_end"]
    if footers and "phases" in footers[-1][1]:
        footer_line, footer = footers[-1]
        totals: dict[str, list[int]] = {}
        for sid, ev in closed.items():
            if opened[sid].get("parent") is not None:
                continue  # nested spans are already inside their parent
            for ph, vals in ev.get("phases", {}).items():
                acc = totals.setdefault(ph, [0] * 6)
                for k in range(6):
                    acc[k] += vals[k]
        expect = {
            ph: vals for ph, vals in footer["phases"].items()
            if any(vals)
        }
        if totals != expect:
            raise ValueError(
                f"span costs do not sum to counter totals: "
                f"{totals} != {expect} "
                f"(footer at line {footer_line}: {_truncated(footer)})"
            )
