"""Structured JSONL run logs.

One traced run writes one JSON object per line:

========================  ====================================================
``ev``                    meaning / extra fields
========================  ====================================================
``run``                   header: ``command``, ``time_unix``, input shape
                          (degree, ``mu_bits``, strategy, ...)
``span_open``             ``id``, ``name``, ``phase``, ``depth``, ``parent``,
                          ``ts_ns``
``span_close``            ``id``, ``name``, ``phase``, ``wall_ns``,
                          ``mul_count``, ``bit_cost``, ``phases`` (per
                          cost-phase ``[muls, mul_bits, divs, div_bits,
                          adds, add_bits]`` deltas)
``interval_case``         one per interval problem: ``node``, ``gap``,
                          ``case`` (``"1"``/``"2a"``/``"2b"``/``"2c"``) and,
                          for case 2c, the sieve/bisection/Newton step counts
``hybrid_solve``          per 2c solve: phase step counts and the strategy
``run_end``               footer: full per-phase ``CostCounter`` totals and
                          the :class:`~repro.core.sieve.IntervalStats` fields
========================  ====================================================

The log is append-only and crash-tolerant (each line is complete JSON);
:func:`read_events` and :func:`validate_events` are the programmatic
consumers used by the tests and the CI smoke job.
"""

from __future__ import annotations

import json
import time
from typing import IO, Any, Iterable

from repro.costmodel.counter import CostCounter
from repro.obs.trace import Span

__all__ = ["EventLog", "read_events", "validate_events"]


def _phases_payload(cost: dict[str, Any] | None) -> dict[str, list[int]]:
    return {
        ph: [st.mul_count, st.mul_bit_cost, st.div_count,
             st.div_bit_cost, st.add_count, st.add_bit_cost]
        for ph, st in (cost or {}).items()
    }


class EventLog:
    """Streaming JSONL sink; plugs into :class:`repro.obs.trace.Tracer`.

    Accepts a path (opened and owned) or any writable text file object
    (borrowed).  Usable as a context manager.
    """

    def __init__(self, path_or_file: str | IO[str]):
        if isinstance(path_or_file, str):
            self._fh: IO[str] = open(path_or_file, "w", encoding="utf-8")
            self._owned = True
        else:
            self._fh = path_or_file
            self._owned = False

    # -- raw line ------------------------------------------------------------
    def write(self, obj: dict[str, Any]) -> None:
        """Append one event object as a single JSON line."""
        self._fh.write(json.dumps(obj, separators=(",", ":")) + "\n")

    # -- well-known events ----------------------------------------------------
    def run_header(self, command: str, **fields: Any) -> None:
        """First line of the log: what run this is."""
        self.write({"ev": "run", "command": command,
                    "time_unix": time.time(), **fields})

    def span_open(self, span: Span) -> None:
        """Tracer callback: a span opened."""
        self.write({
            "ev": "span_open", "id": span.sid, "name": span.name,
            "phase": span.phase, "depth": span.depth, "parent": span.parent,
            "ts_ns": span.start_ns, **({"attrs": span.attrs} if span.attrs else {}),
        })

    def span_close(self, span: Span) -> None:
        """Tracer callback: a span closed; costs are final here."""
        self.write({
            "ev": "span_close", "id": span.sid, "name": span.name,
            "phase": span.phase, "wall_ns": span.wall_ns,
            "mul_count": span.mul_count, "bit_cost": span.bit_cost,
            "phases": _phases_payload(span.cost),
        })

    def event(self, name: str, fields: dict[str, Any]) -> None:
        """Tracer callback: an instantaneous event."""
        self.write({"ev": name, **fields})

    def run_end(self, counter: CostCounter | None = None,
                stats: Any | None = None, **fields: Any) -> None:
        """Footer: authoritative per-phase totals for cross-checking spans."""
        obj: dict[str, Any] = {"ev": "run_end", **fields}
        if counter is not None:
            obj["phases"] = {
                ph: [st.mul_count, st.mul_bit_cost, st.div_count,
                     st.div_bit_cost, st.add_count, st.add_bit_cost]
                for ph, st in counter.stats.items()
            }
            obj["total_bit_cost"] = counter.total_bit_cost
            obj["mul_count"] = counter.mul_count
        if stats is not None:
            obj["interval_stats"] = {
                k: getattr(stats, k)
                for k in ("evaluations", "preinterval_evals", "sieve_evals",
                          "bisection_evals", "newton_evals", "newton_iters",
                          "sieve_rounds", "solves", "case1", "case2a",
                          "case2b", "case2c")
            }
        self.write(obj)

    def close(self) -> None:
        """Flush, and close the file if this log opened it."""
        self._fh.flush()
        if self._owned:
            self._fh.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_events(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL event log back into a list of dicts."""
    out = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def validate_events(events: Iterable[dict[str, Any]]) -> None:
    """Schema check for one run's event list; raises ``ValueError``.

    Enforces: a ``run`` header comes first; every ``span_open`` has a
    matching ``span_close`` (and vice versa); and when a ``run_end``
    footer with per-phase totals is present, the cost deltas of the
    *top-level* spans sum exactly to those totals — i.e. the trace
    accounts for every charged bit operation.
    """
    events = list(events)
    if not events:
        raise ValueError("empty event log")
    if events[0].get("ev") != "run":
        raise ValueError("first event must be the 'run' header")

    opened: dict[int, dict[str, Any]] = {}
    closed: dict[int, dict[str, Any]] = {}
    for ev in events:
        kind = ev.get("ev")
        if kind == "span_open":
            if ev["id"] in opened:
                raise ValueError(f"span {ev['id']} opened twice")
            opened[ev["id"]] = ev
        elif kind == "span_close":
            if ev["id"] not in opened:
                raise ValueError(f"span {ev['id']} closed but never opened")
            if ev["id"] in closed:
                raise ValueError(f"span {ev['id']} closed twice")
            closed[ev["id"]] = ev
    unclosed = set(opened) - set(closed)
    if unclosed:
        raise ValueError(f"spans never closed: {sorted(unclosed)}")

    footers = [ev for ev in events if ev.get("ev") == "run_end"]
    if footers and "phases" in footers[-1]:
        totals: dict[str, list[int]] = {}
        for sid, ev in closed.items():
            if opened[sid].get("parent") is not None:
                continue  # nested spans are already inside their parent
            for ph, vals in ev.get("phases", {}).items():
                acc = totals.setdefault(ph, [0] * 6)
                for k in range(6):
                    acc[k] += vals[k]
        expect = {
            ph: vals for ph, vals in footers[-1]["phases"].items()
            if any(vals)
        }
        if totals != expect:
            raise ValueError(
                f"span costs do not sum to counter totals: {totals} != {expect}"
            )
